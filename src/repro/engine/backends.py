"""The built-in :class:`~repro.engine.registry.SolverBackend` instances.

Importing this module registers them:

========== ============== =================================================
name       aliases        implementation
========== ============== =================================================
python     heap           the dict-of-dicts reference kernels (ground
                          truth in the test suite; stdlib-only)
segment_tree               Algorithm 1 peeling over a min segment tree —
                          peel capability only
sparse                    the vectorised CSR/NumPy kernels of
                          :mod:`repro.core.sparse_solvers`; available
                          only when SciPy imports
native     numba          Numba ``@njit`` kernels over raw CSR arrays
                          (:mod:`repro.core.native_kernels`) for the hot
                          loops, sharing the sparse orchestration;
                          available only when SciPy *and* Numba import
========== ============== =================================================

Every method body is a lazy import of the kernel it wraps — the
registry stays import-light and free of cycles (the core modules import
the registry to dispatch, the backends import the core modules to
implement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.engine.registry import SolverBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.affinity.replicator import ReplicatorResult
    from repro.core.coordinate_descent import CDResult
    from repro.core.expansion import ExpansionStep
    from repro.core.initialization import InitializationPlan
    from repro.core.newsea import DCSGAResult, VertexSolver
    from repro.core.refinement import RefinementResult
    from repro.core.seacd import SEACDResult
    from repro.graph.graph import Graph, Vertex
    from repro.graph.sparse import CSRAdjacency
    from repro.peeling.greedy import PeelResult


class PythonBackend(SolverBackend):
    """The pure-Python reference implementation of every capability."""

    name = "python"

    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        from repro.peeling.greedy import _peel_heap

        self.check_adjacency(adjacency)
        return _peel_heap(graph)

    def shrink(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        subset: Iterable["Vertex"],
        tol: float,
        max_iterations: int = 100_000,
    ) -> "CDResult":
        from repro.core.coordinate_descent import coordinate_descent

        return coordinate_descent(
            graph, x, subset=subset, tol=tol, max_iterations=max_iterations
        )

    def expand(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        objective: Optional[float] = None,
    ) -> "ExpansionStep":
        from repro.core.expansion import expansion_step

        return expansion_step(graph, x, objective=objective)

    def seacd(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        max_cd_iterations: int = 100_000,
    ) -> "SEACDResult":
        from repro.core.seacd import _seacd_python

        return _seacd_python(
            graph,
            x0,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            max_cd_iterations=max_cd_iterations,
        )

    def refine(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_cd_iterations: int = 100_000,
    ) -> "RefinementResult":
        from repro.core.refinement import _refine_python

        return _refine_python(
            graph,
            x0,
            tol_scale=tol_scale,
            max_cd_iterations=max_cd_iterations,
        )

    def new_sea(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        plan: Optional["InitializationPlan"] = None,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "DCSGAResult":
        from repro.core.newsea import _new_sea_python

        self.check_adjacency(adjacency)
        return _new_sea_python(
            gd_plus,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            plan=plan,
        )

    def vertex_solver(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "VertexSolver":
        from repro.core.newsea import _default_solver

        self.check_adjacency(adjacency)
        return _default_solver(tol_scale, max_expansions)

    def initialization_plan(
        self,
        gd_plus: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "InitializationPlan":
        from repro.core.initialization import _smart_initialization_plan_python

        self.check_adjacency(adjacency)
        return _smart_initialization_plan_python(gd_plus)

    def replicator(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        from repro.affinity.replicator import _replicator_python

        return _replicator_python(graph, x0, rule, tol, max_iterations)

    def mean_graph(self, graphs: List["Graph"]) -> "Graph":
        from repro.core.monitor import _mean_graph_python

        return _mean_graph_python(graphs)


class SegmentTreeBackend(SolverBackend):
    """Algorithm 1 over a min segment tree — a peel-only backend.

    Exists to keep the paper's suggested priority structure benchmarkable
    (`bench_ablation_peeling_backend.py`); asking it for any other
    capability raises :class:`~repro.exceptions.BackendCapabilityError`.
    """

    name = "segment_tree"

    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        from repro.peeling.greedy import _peel_segment_tree

        self.check_adjacency(adjacency)
        return _peel_segment_tree(graph)


class SparseBackend(SolverBackend):
    """The vectorised CSR/NumPy kernel set; requires SciPy.

    Capabilities accept a prebuilt
    :class:`~repro.graph.sparse.CSRAdjacency` (``adjacency=``) so
    callers running many solves on one graph — the batch layer through
    :class:`~repro.engine.prepared.PreparedGraph` — freeze it once.
    """

    name = "sparse"
    supports_shared_adjacency = True

    def available(self) -> bool:
        from repro.graph.sparse import scipy_available

        return scipy_available()

    def missing_reason(self) -> str:
        return (
            "backend='sparse' requires SciPy, which is not installed; "
            "use the pure-Python backend instead"
        )

    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        from repro.peeling.greedy import _peel_sparse

        return _peel_sparse(graph, adjacency=adjacency)

    def shrink(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        subset: Iterable["Vertex"],
        tol: float,
        max_iterations: int = 100_000,
    ) -> "CDResult":
        import numpy as np

        from repro.core.coordinate_descent import CDResult
        from repro.core.sparse_solvers import coordinate_descent_csr
        from repro.graph.sparse import CSRAdjacency

        adj = CSRAdjacency.from_graph(graph)
        vector = adj.embedding_vector(x)
        members = np.fromiter(
            sorted(adj.index[v] for v in subset), dtype=np.int64
        )
        vector, _, objective, iterations, converged = coordinate_descent_csr(
            adj, vector, members, tol, max_iterations, need_dx=False
        )
        return CDResult(
            x=adj.embedding_dict(vector),
            objective=objective,
            iterations=iterations,
            converged=converged,
        )

    def seacd(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        max_cd_iterations: int = 100_000,
    ) -> "SEACDResult":
        from repro.core.sparse_solvers import seacd_csr

        return seacd_csr(
            graph,
            x0,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            max_cd_iterations=max_cd_iterations,
        )

    def refine(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_cd_iterations: int = 100_000,
    ) -> "RefinementResult":
        from repro.core.refinement import RefinementResult
        from repro.core.sparse_solvers import refine_csr

        x, objective, merges, initial = refine_csr(
            graph,
            x0,
            tol_scale=tol_scale,
            max_cd_iterations=max_cd_iterations,
        )
        return RefinementResult(
            x=x,
            objective=objective,
            merges=merges,
            initial_objective=initial,
        )

    def new_sea(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        plan: Optional["InitializationPlan"] = None,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "DCSGAResult":
        from repro.core.sparse_solvers import new_sea_csr

        return new_sea_csr(
            gd_plus,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            plan=plan,
            adjacency=adjacency,
        )

    def vertex_solver(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "VertexSolver":
        from repro.core.sparse_solvers import csr_vertex_solver

        return csr_vertex_solver(
            gd_plus, tol_scale, max_expansions, adjacency=adjacency
        )

    def initialization_plan(
        self,
        gd_plus: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "InitializationPlan":
        from repro.core.initialization import _smart_initialization_plan_sparse

        return _smart_initialization_plan_sparse(gd_plus, adjacency)

    def replicator(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        from repro.affinity.replicator import _replicator_sparse

        return _replicator_sparse(graph, x0, rule, tol, max_iterations)

    def mean_graph(self, graphs: List["Graph"]) -> "Graph":
        from repro.core.monitor import _mean_graph_sparse

        return _mean_graph_sparse(graphs)


class NativeBackend(SparseBackend):
    """Numba-compiled kernels over raw CSR arrays; requires SciPy + Numba.

    The hot loops — 2-coordinate descent, greedy peeling, replicator
    dynamics, the induced-block gather — run as ``@njit(cache=True)``
    kernels from :mod:`repro.core.native_kernels`; every orchestration
    loop (SEACD, refinement, NewSEA, smart initialisation, mean graph,
    expansion scoring) is the *shared* vectorised code of the sparse
    backend, reached through the ``cd=`` kernel seam of
    :mod:`repro.core.sparse_solvers` — which is what makes native and
    sparse envelope payloads byte-identical.

    Numba is imported lazily on first use; without it the backend stays
    registered but unavailable (``resolve_backend("native",
    fallback="sparse")`` degrades gracefully with one
    :class:`~repro.exceptions.BackendFallbackWarning`).  ``jit=False``
    runs the same kernel bodies interpreted — the differential-test
    mode, exercising the exact code Numba compiles.
    """

    name = "native"

    def __init__(self, jit: bool = True) -> None:
        self._jit = jit

    def available(self) -> bool:
        from repro.core.native_kernels import numba_available
        from repro.graph.sparse import scipy_available

        if not scipy_available():
            return False
        return numba_available() if self._jit else True

    def missing_reason(self) -> str:
        from repro.graph.sparse import scipy_available

        if not scipy_available():
            return (
                "backend='native' requires SciPy, which is not "
                "installed; use the pure-Python backend instead"
            )
        return (
            "backend='native' requires Numba, which is not installed; "
            "use the sparse backend instead (or resolve with "
            "fallback='sparse')"
        )

    def warm(self) -> None:
        """Compile every kernel now (once per process), not per query."""
        from repro.core.native_kernels import warm_kernels

        warm_kernels(jit=self._jit)

    def _kernels(self):  # type: ignore[no-untyped-def]  # KernelSet (lazy import)
        from repro.core.native_kernels import get_kernels

        return get_kernels(jit=self._jit)

    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        return self._kernels().peel(graph, adjacency=adjacency)

    def shrink(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        subset: Iterable["Vertex"],
        tol: float,
        max_iterations: int = 100_000,
    ) -> "CDResult":
        import numpy as np

        from repro.core.coordinate_descent import CDResult
        from repro.graph.sparse import CSRAdjacency

        adj = CSRAdjacency.from_graph(graph)
        vector = adj.embedding_vector(x)
        members = np.fromiter(
            sorted(adj.index[v] for v in subset), dtype=np.int64
        )
        vector, _, objective, iterations, converged = (
            self._kernels().coordinate_descent(
                adj, vector, members, tol, max_iterations, need_dx=False
            )
        )
        return CDResult(
            x=adj.embedding_dict(vector),
            objective=objective,
            iterations=iterations,
            converged=converged,
        )

    def expand(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        objective: Optional[float] = None,
    ) -> "ExpansionStep":
        from repro.core.expansion import ExpansionStep
        from repro.core.sparse_solvers import expansion_step_csr
        from repro.graph.sparse import CSRAdjacency

        adj = CSRAdjacency.from_graph(graph)
        vector = adj.embedding_vector({u: w for u, w in x.items() if w > 0.0})
        dx = adj.matvec(vector)
        before = float(vector @ dx) if objective is None else objective
        new_vector, _, after, expanded, z_size = expansion_step_csr(
            adj, vector, dx, before
        )
        return ExpansionStep(
            x=adj.embedding_dict(new_vector),
            expanded=expanded,
            z_size=z_size,
            objective_before=before,
            objective_after=after,
        )

    def seacd(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        max_cd_iterations: int = 100_000,
    ) -> "SEACDResult":
        from repro.core.sparse_solvers import seacd_csr

        return seacd_csr(
            graph,
            x0,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            max_cd_iterations=max_cd_iterations,
            cd=self._kernels().coordinate_descent,
        )

    def refine(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_cd_iterations: int = 100_000,
    ) -> "RefinementResult":
        from repro.core.refinement import RefinementResult
        from repro.core.sparse_solvers import refine_csr

        x, objective, merges, initial = refine_csr(
            graph,
            x0,
            tol_scale=tol_scale,
            max_cd_iterations=max_cd_iterations,
            cd=self._kernels().coordinate_descent,
        )
        return RefinementResult(
            x=x,
            objective=objective,
            merges=merges,
            initial_objective=initial,
        )

    def new_sea(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        plan: Optional["InitializationPlan"] = None,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "DCSGAResult":
        from repro.core.sparse_solvers import new_sea_csr

        return new_sea_csr(
            gd_plus,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            plan=plan,
            adjacency=adjacency,
            cd=self._kernels().coordinate_descent,
        )

    def vertex_solver(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "VertexSolver":
        from repro.core.sparse_solvers import csr_vertex_solver

        return csr_vertex_solver(
            gd_plus,
            tol_scale,
            max_expansions,
            adjacency=adjacency,
            cd=self._kernels().coordinate_descent,
        )

    def replicator(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        return self._kernels().replicator(
            graph, x0, rule=rule, tol=tol, max_iterations=max_iterations
        )

    # initialization_plan and mean_graph are inherited from SparseBackend
    # verbatim: already vectorised one-pass code with nothing to compile.


#: The instances the package registers on import.
PYTHON = PythonBackend()
SEGMENT_TREE = SegmentTreeBackend()
SPARSE = SparseBackend()
NATIVE = NativeBackend()

register_backend(PYTHON, aliases=("heap",))
register_backend(SEGMENT_TREE)
register_backend(SPARSE)
register_backend(NATIVE, aliases=("numba",))
