"""Multi-worker scale-out: a router process in front of solver workers.

``repro serve --workers N`` (N >= 2) runs this topology::

            clients
               │ HTTP
        ┌──────▼──────┐   announce/stop      ┌────────────────┐
        │   router    │◄────────────────────►│ worker 0 (app) │
        │ (this file) │   mp.Pipe control    ├────────────────┤
        │  /healthz   │◄────────────────────►│ worker 1 (app) │
        │  /metrics   │        ...           ├────────────────┤
        └──────┬──────┘                      │ worker N-1     │
               │ HTTP forward                └───────┬────────┘
               └─── owner by sha256(ref) ────────────┘
                                             /dev/shm rp<pid>_* segments

Each worker is a full :class:`~repro.service.app.ServiceApp` — the same
routes, the same envelopes — listening on its own ephemeral loopback
port, with the engine backends warmed once at spawn.  The router is a
thin asyncio process that **owns no solver state**: it parses just
enough of each request to pick the owning worker and relays bytes
verbatim (:func:`repro.service.http.send_request`), so a client cannot
tell a cluster from a single process by its response bodies.

Routing rules
-------------
* graph traffic (``/v1/solve``, ``/v1/graphs``, ``/v1/batch``) is
  sharded by the **graph reference**: ``sha256(ref) % N`` names the
  owner, so each graph is uploaded, prepared and solved on one worker
  (the prepare-exactly-once contract) and every other worker can still
  serve it by attaching the owner's shared-memory segment;
* a ``/v1/batch`` naming several graphs goes whole to the first ref's
  owner when every other ref is *announced* (the non-owner serves them
  by shared-memory attach — no rebuild); records whose refs the
  primary could not resolve (shm unavailable, or a dataset ref nobody
  has built) are split out to their owning workers and the
  sub-responses merged back into the single-process envelope shape,
  so a registered graph never 404s and no graph is prepared twice;
* stream sessions are created on the graph owner when the session
  names a graph, round-robin otherwise; the worker id is burned into
  the session id (``w2-1``), so per-session traffic routes by sid
  alone;
* ``/v1/datasets``, session listing and ``/metrics`` fan out to every
  worker and merge; ``/healthz`` answers from the router itself with
  per-worker liveness.

Shared-memory lifecycle
-----------------------
Workers share one segment namespace (``rp<router-pid>_*``).  A cold
build exports its CSR arrays and sends ``("export", ...)`` up the
control pipe; the router records it in the announce log and broadcasts
``("announce", ...)`` to the other workers, whose registries then
resolve that name by attaching instead of rebuilding.  The announce
log is replayed to every respawned worker.  On shutdown the router
stops the workers (each closes its attachments, the last one unlinks)
and then **sweeps** the namespace — unlinking anything still present —
so no ``/dev/shm`` segment survives the router, even after SIGKILLed
workers.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import multiprocessing
import os
import re
import signal
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.http import (
    HttpRequest,
    HttpResponse,
    send_request,
    serve_http,
)

__all__ = ["ClusterRouter", "run_cluster"]

#: seconds a worker gets to import, warm its backends and bind
_READY_TIMEOUT = 120.0
#: seconds a request handler waits for the supervisor to respawn the
#: worker it just failed to reach before answering 502
_RESPAWN_WAIT = 60.0
#: supervisor liveness poll cadence
_SUPERVISE_TICK = 0.2
#: per-forward network timeout (covers connect + response; solve
#: deadlines are enforced by the worker itself, so this only catches a
#: hung worker) — ``None`` leaves it to the worker
_FORWARD_TIMEOUT: Optional[float] = None

_SID_RE = re.compile(r"^w(\d+)-")


def _shard(ref: str, n: int) -> int:
    """The owning worker of a graph reference — stable across runs."""
    digest = hashlib.sha256(ref.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % n


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _warm_backends() -> List[str]:
    """Warm every available engine backend (JIT compiles pay here)."""
    from repro.engine import backend_names, get_backend

    warmed = []
    for name in sorted(
        {get_backend(n, require=False).name for n in backend_names()}
    ):
        backend = get_backend(name, require=False)
        if backend.available():
            backend.warm()
            warmed.append(name)
    return warmed


async def _worker_serve(
    app: Any, conn: Any, host: str
) -> None:
    """One worker's life: bind, report ready, serve until told to stop."""
    server = await app.start_server(host=host, port=0)
    port = server.sockets[0].getsockname()[1]
    conn.send(("ready", {"port": port, "pid": os.getpid()}))
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()

    def on_control() -> None:
        try:
            while conn.poll():
                kind, payload = conn.recv()
                if kind == "announce":
                    app.registry.register_shared(
                        payload["ref"],
                        payload["fingerprint"],
                        payload["segment"],
                    )
                elif kind == "stop":
                    stop.set()
        except (EOFError, OSError):
            # The router died or closed the pipe: no supervisor means
            # no sweep, so exit cleanly and release our attachments.
            stop.set()

    loop.add_reader(conn.fileno(), on_control)
    try:
        await stop.wait()
    finally:
        loop.remove_reader(conn.fileno())
        server.close()
        await server.wait_closed()
        await app.aclose()


def _worker_main(
    worker_id: int,
    conn: Any,
    host: str,
    shm_prefix: str,
    options: Dict[str, Any],
) -> None:
    """Entry point of one spawned worker process.

    Top-level (picklable) for the ``spawn`` start method.  SIGINT is
    ignored — a terminal Ctrl-C reaches the whole process group, and
    shutdown must stay coordinated by the router's ``stop`` message.
    """
    # repro: allow[REPRO-SIGNAL-RESTORE] -- process-lifetime install; shutdown is router-coordinated
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.service.app import ServiceApp

    log_level = options.pop("log_level", None)
    if log_level is not None or options.get("access_log"):
        # Logging config does not survive the spawn — rebuild it here
        # so per-worker access records (tagged with the worker id)
        # actually reach the router's stderr.
        from repro.obs.logs import configure_logging

        configure_logging(level=log_level or "info")

    try:
        from repro.engine.shm import SharedGraphStore, shm_available

        store: Optional[Any] = (
            SharedGraphStore(prefix=shm_prefix) if shm_available() else None
        )
    except Exception:  # pragma: no cover - shm is an optimisation
        store = None

    send_lock = threading.Lock()

    def on_export(ref: str, fingerprint: str, segment: str) -> None:
        # Fired from pool threads mid-build; the pipe is one shared
        # channel, so sends are serialised.
        with send_lock:
            try:
                conn.send(
                    (
                        "export",
                        {
                            "ref": ref,
                            "fingerprint": fingerprint,
                            "segment": segment,
                        },
                    )
                )
            except (OSError, ValueError):  # pragma: no cover - races
                pass

    app = ServiceApp(
        worker_id=worker_id,
        shm_store=store,
        on_export=on_export if store is not None else None,
        **options,
    )
    _warm_backends()
    try:
        asyncio.run(_worker_serve(app, conn, host))
    finally:
        if store is not None:
            store.close_all()
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown
            pass


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
class _WorkerHandle:
    """The router's view of one worker process."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.proc: Optional[Any] = None
        self.conn: Optional[Any] = None
        self.port = 0
        self.pid = 0
        self.restarts = 0
        #: bumped on every (re)spawn — request retries key off it
        self.generation = 0
        self.ready = asyncio.Event()

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class ClusterRouter:
    """Spawns, supervises and routes to ``workers`` solver processes."""

    def __init__(
        self,
        workers: int,
        host: str = "127.0.0.1",
        app_options: Optional[Dict[str, Any]] = None,
        shm_prefix: Optional[str] = None,
    ) -> None:
        if workers < 2:
            raise ValueError("a cluster needs at least 2 workers")
        self.host = host
        self.app_options = dict(app_options or {})
        self.shm_prefix = shm_prefix or f"rp{os.getpid()}"
        self.started = time.monotonic()
        self._ctx = multiprocessing.get_context("spawn")
        self._workers = [_WorkerHandle(i) for i in range(workers)]
        self._rr = itertools.count()
        #: announce log: ref -> {"ref", "fingerprint", "segment"};
        #: replayed to respawned workers, swept at shutdown
        self._announced: Dict[str, Dict[str, str]] = {}
        self._supervisor: Optional["asyncio.Task[None]"] = None
        self._stopping = False

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker and wait until all report ready."""
        await asyncio.gather(
            *(self._spawn(handle) for handle in self._workers)
        )
        loop = asyncio.get_running_loop()
        self._supervisor = loop.create_task(self._supervise())

    async def _spawn(self, handle: _WorkerHandle) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                handle.worker_id,
                child,
                self.host,
                self.shm_prefix,
                self.app_options,
            ),
            daemon=True,
            name=f"repro-worker-{handle.worker_id}",
        )
        proc.start()
        child.close()
        handle.proc = proc
        handle.conn = parent
        handle.ready.clear()
        deadline = time.monotonic() + _READY_TIMEOUT
        while not parent.poll():
            if time.monotonic() > deadline or not proc.is_alive():
                raise RuntimeError(
                    f"worker {handle.worker_id} failed to start"
                )
            await asyncio.sleep(0.05)
        # repro: allow[REPRO-ASYNC-BLOCK] -- poll() loop above guarantees a buffered message; recv() returns immediately
        kind, payload = parent.recv()
        if kind != "ready":  # pragma: no cover - protocol guard
            raise RuntimeError(
                f"worker {handle.worker_id} sent {kind!r} before ready"
            )
        handle.port = payload["port"]
        handle.pid = payload["pid"]
        handle.generation += 1
        # Replay the announce log so a respawned worker can re-attach
        # every segment its predecessor (or any sibling) exported.
        for record in self._announced.values():
            parent.send(("announce", record))
        loop = asyncio.get_running_loop()
        loop.add_reader(
            parent.fileno(), self._on_worker_message, handle
        )
        handle.ready.set()

    def _on_worker_message(self, handle: _WorkerHandle) -> None:
        conn = handle.conn
        if conn is None:
            return
        try:
            while conn.poll():
                kind, payload = conn.recv()
                if kind == "export":
                    self._announced[payload["ref"]] = payload
                    self._broadcast(payload, exclude=handle.worker_id)
        except (EOFError, OSError):
            # Worker died; the supervisor respawns it.  Stop reading a
            # dead pipe so the loop does not spin on EOF.
            loop = asyncio.get_event_loop()
            try:
                loop.remove_reader(conn.fileno())
            except (OSError, ValueError):  # pragma: no cover
                pass

    def _broadcast(
        self, record: Dict[str, str], exclude: Optional[int] = None
    ) -> None:
        for handle in self._workers:
            if handle.worker_id == exclude or handle.conn is None:
                continue
            if not handle.ready.is_set():
                continue  # a respawn replays the full log anyway
            try:
                handle.conn.send(("announce", record))
            except (OSError, ValueError):  # pragma: no cover - races
                pass

    async def _supervise(self) -> None:
        """Respawn crashed workers; their segments re-attach via the
        replayed announce log."""
        while not self._stopping:
            await asyncio.sleep(_SUPERVISE_TICK)
            for handle in self._workers:
                if self._stopping or handle.alive:
                    continue
                handle.ready.clear()
                handle.restarts += 1
                self._detach(handle)
                try:
                    await self._spawn(handle)
                except RuntimeError:  # pragma: no cover - spawn storm
                    # Leave it dead for this tick; retried next sweep.
                    pass

    def _detach(self, handle: _WorkerHandle) -> None:
        loop = asyncio.get_event_loop()
        if handle.conn is not None:
            try:
                loop.remove_reader(handle.conn.fileno())
            except (OSError, ValueError):
                pass
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        if handle.proc is not None:
            handle.proc.join(timeout=0)

    async def shutdown(self) -> None:
        """Stop workers, join them, and sweep the segment namespace."""
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        for handle in self._workers:
            if handle.conn is not None:
                try:
                    handle.conn.send(("stop", None))
                except (OSError, ValueError):
                    pass
        loop = asyncio.get_running_loop()
        for handle in self._workers:
            if handle.proc is not None:
                await loop.run_in_executor(
                    None, handle.proc.join, 10.0
                )
                if handle.proc.is_alive():  # pragma: no cover - hang
                    handle.proc.terminate()
                    await loop.run_in_executor(
                        None, handle.proc.join, 5.0
                    )
            self._detach(handle)
        self._sweep_segments()

    def _sweep_segments(self) -> None:
        """Unlink every segment of this cluster still in ``/dev/shm``.

        Workers that exited cleanly already drained their refcounts
        (the last holder unlinks); this is the backstop for SIGKILLed
        workers, whose counts never drain.
        """
        try:
            from repro.engine.shm import list_segments, unlink_segment
        except Exception:  # pragma: no cover - shm gated out
            return
        names = set(list_segments(self.shm_prefix))
        names.update(
            record["segment"] for record in self._announced.values()
        )
        for name in names:
            unlink_segment(name)

    # -- routing -------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        method, path = request.method, request.path
        if method == "GET" and path == "/healthz":
            return self._healthz()
        if method == "GET" and path == "/metrics":
            return await self._metrics(request)
        if method == "GET" and path == "/v1/datasets":
            return await self._datasets(request)
        if method == "GET" and path == "/v1/stream/sessions":
            return await self._session_list(request)
        if method == "POST" and path == "/v1/batch":
            return await self._batch(request)
        return await self._forward(self._pick_worker(request), request)

    def _pick_worker(self, request: HttpRequest) -> _WorkerHandle:
        n = len(self._workers)
        path = request.path
        if path.startswith("/v1/stream/sessions/"):
            sid = path[len("/v1/stream/sessions/") :].split("/", 1)[0]
            match = _SID_RE.match(sid)
            if match is not None and int(match.group(1)) < n:
                return self._workers[int(match.group(1))]
            # Unknown prefix: any worker produces the proper 404.
            return self._workers[0]
        ref = self._graph_ref(request)
        if ref is not None:
            return self._workers[_shard(ref, n)]
        if path in ("/v1/stream/replay", "/v1/stream/sessions"):
            # No graph affinity: spread the load.
            return self._workers[next(self._rr) % n]
        # Everything else (including unknown paths and malformed
        # bodies): worker 0 renders the same envelope a single-process
        # server would.
        return self._workers[0]

    def _graph_ref(self, request: HttpRequest) -> Optional[str]:
        """The graph reference this request should shard on, if any."""
        if request.method != "POST" or not request.body:
            return None
        try:
            body = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        path = request.path
        if path == "/v1/solve" and isinstance(body, dict):
            ref = body.get("graph")
            return ref if isinstance(ref, str) else None
        if path == "/v1/graphs" and isinstance(body, dict):
            ref = body.get("name")
            return ref if isinstance(ref, str) else None
        if path == "/v1/stream/sessions" and isinstance(body, dict):
            ref = body.get("graph")
            return ref if isinstance(ref, str) else None
        if path == "/v1/batch":
            records = (
                body.get("queries") if isinstance(body, dict) else body
            )
            if isinstance(records, list):
                for record in records:
                    if not isinstance(record, dict):
                        continue
                    for field in ("graph", "dataset"):
                        ref = record.get(field)
                        if isinstance(ref, str):
                            return ref
        return None

    async def _forward(
        self, handle: _WorkerHandle, request: HttpRequest
    ) -> HttpResponse:
        """Relay to *handle*, retrying once across a respawn."""
        for attempt in (0, 1):
            try:
                await asyncio.wait_for(
                    handle.ready.wait(), _RESPAWN_WAIT
                )
                return await send_request(
                    self.host, handle.port, request, _FORWARD_TIMEOUT
                )
            except asyncio.TimeoutError:
                return HttpResponse(
                    504,
                    {
                        "error": f"worker {handle.worker_id} timed out",
                        "status": "timeout",
                    },
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                if attempt:
                    break
                await self._await_respawn(handle)
        return HttpResponse(
            502,
            {"error": f"worker {handle.worker_id} unavailable"},
        )

    async def _await_respawn(self, handle: _WorkerHandle) -> None:
        """Wait for the supervisor to bring *handle* back (or decide
        the failure was transient because the worker never died)."""
        generation = handle.generation
        deadline = time.monotonic() + _RESPAWN_WAIT
        grace = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            if handle.generation > generation and handle.ready.is_set():
                return
            if (
                time.monotonic() > grace
                and handle.alive
                and handle.ready.is_set()
            ):
                return  # transient: the worker is (still) live
            await asyncio.sleep(0.05)

    # -- batch scatter -------------------------------------------------
    async def _batch(self, request: HttpRequest) -> HttpResponse:
        """Route ``/v1/batch`` without stranding records off-owner.

        The common case forwards the batch verbatim to the first ref's
        owner: refs the owner does not shard are *announced*, so it
        serves them by shared-memory attach — no rebuild, and the
        response is the owner's bytes.  Records whose refs the primary
        worker could not resolve (shared memory unavailable, or a
        never-built dataset ref owned elsewhere) are split out to their
        owning workers — preserving prepare-once — and the
        sub-responses merged back into the exact single-process
        envelope shape (positional qids assigned the way
        ``assign_qids`` would, results in submission order, stats
        summed).  Batches the router cannot confidently split
        (malformed records, missing refs, duplicate qids) forward
        whole, so the worker renders the same error envelope a single
        process would.
        """
        plan = self._split_batch(request)
        if plan is None:
            return await self._forward(
                self._pick_worker(request), request
            )
        records, wrapper, targets, qids = plan
        groups: Dict[int, List[int]] = {}
        for index, target in enumerate(targets):
            groups.setdefault(target, []).append(index)

        def sub_request(indices: List[int]) -> HttpRequest:
            subrecords = [
                dict(records[i], qid=qids[i]) for i in indices
            ]
            payload: Any = (
                dict(wrapper, queries=subrecords)
                if wrapper is not None
                else subrecords
            )
            return HttpRequest(
                method="POST",
                path="/v1/batch",
                headers=dict(request.headers),
                body=json.dumps(payload).encode("utf-8"),
            )

        order = sorted(groups)
        responses = await asyncio.gather(
            *(
                self._forward(
                    self._workers[target], sub_request(groups[target])
                )
                for target in order
            )
        )
        # A failed sub-batch fails the whole request, as one process
        # would fail it; prefer the failure of the sub-batch holding
        # the earliest record so messages track submission order.
        failed = [
            (min(groups[target]), response)
            for target, response in zip(order, responses)
            if response.status != 200
        ]
        if failed:
            return min(failed, key=lambda item: item[0])[1]
        merged: List[Optional[Dict[str, Any]]] = [None] * len(records)
        position = {qid: index for index, qid in enumerate(qids)}
        stats_parts: List[Dict[str, Any]] = []
        for target, response in zip(order, responses):
            try:
                payload = json.loads(response.payload)
            except (TypeError, ValueError):
                payload = None
            if not isinstance(payload, dict):  # pragma: no cover
                return HttpResponse(
                    502,
                    {
                        "error": f"worker {target} returned an "
                        "unmergeable batch response"
                    },
                )
            for result in payload.get("results", []):
                index = position.get(str(result.get("qid")))
                if index is not None and merged[index] is None:
                    merged[index] = result
            if isinstance(payload.get("stats"), dict):
                stats_parts.append(payload["stats"])
        if any(result is None for result in merged):  # pragma: no cover
            return HttpResponse(
                502, {"error": "batch scatter lost results"}
            )
        stats: Dict[str, Any] = {
            "queries": len(records),
            "mode": stats_parts[0].get("mode") if stats_parts else None,
        }
        for key in (
            "preps_built",
            "preps_shared",
            "cache_hits",
            "solved",
            "errors",
            "timeouts",
        ):
            stats[key] = sum(
                int(part.get(key, 0)) for part in stats_parts
            )
        return HttpResponse(
            200,
            {
                "status": "ok"
                if all(r.get("status") == "ok" for r in merged)
                else "partial",
                "results": merged,
                "stats": stats,
            },
        )

    def _split_batch(
        self, request: HttpRequest
    ) -> Optional[
        Tuple[
            List[Dict[str, Any]],
            Optional[Dict[str, Any]],
            List[int],
            List[str],
        ]
    ]:
        """The scatter plan for a batch, or ``None`` to forward whole.

        Returns ``(records, wrapper, targets, qids)``: the parsed
        records, the enclosing dict body (``None`` for a bare array),
        each record's serving worker, and the qid each record will
        carry — explicit ones kept, blanks filled positionally exactly
        as ``assign_qids`` fills them in one process.  ``None`` means
        every record lands on the primary worker anyway, or the batch
        is one the router should not second-guess (malformed records,
        refs missing, duplicate qids — the worker owns those errors).
        """
        if not request.body:
            return None
        try:
            body = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        wrapper: Optional[Dict[str, Any]] = None
        records = body
        if isinstance(body, dict):
            wrapper = body
            records = body.get("queries")
        if not isinstance(records, list) or not records:
            return None
        n = len(self._workers)
        primary: Optional[int] = None
        targets: List[int] = []
        taken: Dict[str, int] = {}
        explicit: List[str] = []
        for index, record in enumerate(records):
            if not isinstance(record, dict):
                return None
            ref = None
            for field in ("graph", "dataset"):
                value = record.get(field)
                if isinstance(value, str):
                    ref = value
                    break
            if ref is None:
                return None
            owner = _shard(ref, n)
            if primary is None:
                primary = owner
            # An announced ref is servable anywhere by segment attach,
            # so it stays with the primary — the whole-batch fast path
            # and the cross-owner zero-copy read the topology is for.
            if owner == primary or ref in self._announced:
                targets.append(primary)
            else:
                targets.append(owner)
            qid = str(record["qid"]) if "qid" in record else ""
            if qid:
                if qid in taken:
                    return None
                taken[qid] = index
            explicit.append(qid)
        assert primary is not None
        if all(target == primary for target in targets):
            return None
        qids: List[str] = []
        auto = 0
        for qid in explicit:
            if not qid:
                while f"q{auto}" in taken:
                    auto += 1
                qid = f"q{auto}"
                taken[qid] = -1
            qids.append(qid)
        return records, wrapper, targets, qids

    # -- fan-out views -------------------------------------------------
    def _healthz(self) -> HttpResponse:
        return HttpResponse(
            200,
            {
                "status": "ok",
                "uptime_seconds": round(
                    time.monotonic() - self.started, 3
                ),
                "cluster": {
                    "workers": len(self._workers),
                    "restarts": sum(h.restarts for h in self._workers),
                    "segments_announced": len(self._announced),
                },
                "workers": [
                    {
                        "worker": h.worker_id,
                        "pid": h.pid,
                        "port": h.port,
                        "alive": h.alive,
                        "restarts": h.restarts,
                    }
                    for h in self._workers
                ],
            },
        )

    async def _fan_out(
        self, request: HttpRequest
    ) -> List[Tuple[_WorkerHandle, Optional[Any]]]:
        """GET *request* on every worker; ``None`` for the unreachable."""

        async def one(handle: _WorkerHandle) -> Optional[Any]:
            try:
                response = await send_request(
                    self.host, handle.port, request, 10.0
                )
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ):
                return None
            if response.status != 200 or not isinstance(
                response.payload, str
            ):
                return None
            try:
                return json.loads(response.payload)
            except ValueError:  # pragma: no cover - worker bug guard
                return None

        results = await asyncio.gather(
            *(one(handle) for handle in self._workers)
        )
        return list(zip(self._workers, results))

    async def _metrics(self, request: HttpRequest) -> HttpResponse:
        pairs = await self._fan_out(
            HttpRequest(method="GET", path="/metrics")
        )
        snapshots = [snap for _, snap in pairs if snap is not None]
        wants_text = request.query.get(
            "format"
        ) == "prometheus" or "text/plain" in request.headers.get(
            "accept", ""
        )
        if wants_text:
            from repro.obs.prometheus import render_multi_exposition

            labelled = [
                ({"worker": str(snap.get("worker", i))}, snap)
                for i, snap in enumerate(snapshots)
            ]
            return HttpResponse(
                200,
                render_multi_exposition(labelled),
                content_type=(
                    "text/plain; version=0.0.4; charset=utf-8"
                ),
            )
        return HttpResponse(
            200,
            {
                "cluster": {
                    "workers": len(self._workers),
                    "reachable": len(snapshots),
                    "restarts": sum(h.restarts for h in self._workers),
                    "uptime_seconds": round(
                        time.monotonic() - self.started, 3
                    ),
                },
                "workers": snapshots,
                "aggregate": _aggregate(snapshots),
            },
        )

    async def _datasets(self, request: HttpRequest) -> HttpResponse:
        pairs = await self._fan_out(
            HttpRequest(method="GET", path="/v1/datasets")
        )
        graphs: set = set()
        warm: set = set()
        for _, snap in pairs:
            if isinstance(snap, dict):
                graphs.update(snap.get("graphs", []))
                warm.update(snap.get("warm", []))
        return HttpResponse(
            200, {"graphs": sorted(graphs), "warm": sorted(warm)}
        )

    async def _session_list(self, request: HttpRequest) -> HttpResponse:
        pairs = await self._fan_out(
            HttpRequest(method="GET", path="/v1/stream/sessions")
        )
        sessions: List[str] = []
        stats: List[Dict[str, Any]] = []
        for _, snap in pairs:
            if isinstance(snap, dict):
                sessions.extend(snap.get("sessions", []))
                if isinstance(snap.get("stats"), dict):
                    stats.append(snap["stats"])
        return HttpResponse(
            200,
            {"sessions": sorted(sessions), "stats": _aggregate(stats)},
        )


def _aggregate(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Field-wise sum of numeric counters across worker snapshots.

    Dicts recurse; numbers add; anything non-summable (rates,
    quantiles, uptime, the worker tag) is dropped — the per-worker
    section carries the full detail.
    """
    skip = {"uptime_seconds", "worker", "latency", "loop", "hit_rate"}
    out: Dict[str, Any] = {}
    for snap in snapshots:
        for key, value in snap.items():
            if key in skip:
                continue
            if isinstance(value, dict):
                merged = _aggregate(
                    [value]
                    + (
                        [out[key]]
                        if isinstance(out.get(key), dict)
                        else []
                    )
                )
                out[key] = merged
            elif isinstance(value, bool):
                continue
            elif isinstance(value, (int, float)):
                existing = out.get(key, 0)
                if isinstance(existing, (int, float)):
                    out[key] = existing + value
    return out


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_cluster(
    workers: int,
    host: str = "127.0.0.1",
    port: int = 8765,
    app_options: Optional[Dict[str, Any]] = None,
    banner: Optional[Callable[[str, int], None]] = None,
) -> int:
    """Run the router + *workers* solver processes until SIGTERM/SIGINT.

    Blocks the calling process (the ``repro serve --workers N`` body).
    *banner* is called once with the bound ``(host, port)`` — the CLI
    prints its parseable ``listening on`` line there.
    """

    async def _run() -> None:
        router = ClusterRouter(
            workers, host=host, app_options=app_options
        )
        await router.start()
        server = await serve_http(router.handle, host, port)
        bound_host, bound_port = server.sockets[0].getsockname()[:2]
        if banner is not None:
            banner(bound_host, bound_port)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await router.shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        pass
    print("# repro serve stopped", file=sys.stderr)
    return 0
