"""A minimal stdlib HTTP/1.1 layer for the query service.

The service deliberately depends on nothing outside the standard
library, so this module implements the few hundred bytes of HTTP the
service actually needs — parse one request (request line, headers,
``Content-Length`` body), hand it to an async handler, write one JSON
response, close the connection — on top of :mod:`asyncio` streams.

It is not a general web server: no chunked transfer, no keep-alive, no
TLS.  Requests larger than the configured limits are refused with
``413``; malformed requests get ``400`` instead of a traceback.  The
request/response dataclasses double as the in-process testing surface —
:meth:`repro.service.app.ServiceApp.dispatch` builds an
:class:`HttpRequest` directly, so every route is testable without a
socket.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional
from urllib.parse import parse_qsl, urlencode, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "send_request",
    "serve_http",
    "write_response",
]

#: Upload bodies above this are refused with 413 (uploaded edge lists
#: are text; 32 MiB is far beyond any benchmark graph).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Request line + headers above this are refused outright.
MAX_HEAD_BYTES = 32 * 1024

_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure that maps to one HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split path, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (``None`` for an empty body).

        Raises :class:`HttpError` (400) on undecodable bytes or invalid
        JSON — route handlers never see malformed payloads.
        """
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


@dataclass
class HttpResponse:
    """One response: a status and a JSON-able payload.

    ``content_type`` overrides the default JSON serialisation: when set
    and the payload is a string, the body is that text verbatim — the
    seam the ``/metrics`` Prometheus exposition uses.  JSON responses
    leave it ``None`` and keep their exact historical bytes.
    """

    status: int
    payload: Any = None
    headers: Dict[str, str] = field(default_factory=dict)
    content_type: Optional[str] = None

    def body_bytes(self) -> bytes:
        if self.payload is None:
            return b""
        if self.content_type is not None and isinstance(self.payload, str):
            return self.payload.encode("utf-8")
        return (json.dumps(self.payload, sort_keys=True) + "\n").encode(
            "utf-8"
        )


#: The application-side contract: one request in, one response out.
Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request from *reader*.

    Returns ``None`` when the peer closed the connection before sending
    anything; raises :class:`HttpError` on anything malformed or
    oversized.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    return HttpRequest(
        method=method,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter, response: HttpResponse
) -> None:
    """Serialise *response* (JSON body, ``Connection: close``)."""
    body = response.body_bytes()
    reason = _REASONS.get(response.status, "Unknown")
    content_type = (
        response.content_type
        if response.content_type is not None
        else "application/json; charset=utf-8"
    )
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


#: response headers the forwarding proxy recomputes rather than relays
_HOP_HEADERS = frozenset({"content-type", "content-length", "connection"})


async def send_request(
    host: str,
    port: int,
    request: HttpRequest,
    timeout: Optional[float] = None,
) -> HttpResponse:
    """Send *request* to ``host:port`` and parse the one response.

    The client side of the protocol this module serves — the cluster
    router uses it to forward a parsed request to the owning worker
    verbatim (one request per connection, ``Connection: close``).  The
    worker's body bytes are relayed untouched (as a verbatim-text
    payload with the worker's ``Content-Type``), so the envelopes a
    client receives through the router are byte-identical to talking to
    the worker — or a single-process server — directly.

    Raises ``ConnectionError`` / ``asyncio.TimeoutError`` upwards; the
    caller owns retry and 502/503 mapping.
    """
    reader, writer = await asyncio.open_connection(host=host, port=port)
    try:
        target = request.path
        if request.query:
            target += "?" + urlencode(request.query)
        head = [
            f"{request.method} {target} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(request.body)}",
            "Connection: close",
        ]
        for name, value in request.headers.items():
            if name.lower() in ("host", "content-length", "connection"):
                continue
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + request.body
        )
        await writer.drain()
        return await asyncio.wait_for(_read_response(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def _read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one ``Connection: close`` response from a worker."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ConnectionError(f"malformed status line: {lines[0]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    relayed = {
        name: value
        for name, value in headers.items()
        if name not in _HOP_HEADERS
    }
    return HttpResponse(
        status=status,
        payload=body.decode("utf-8") if body else None,
        headers=relayed,
        content_type=headers.get(
            "content-type", "application/json; charset=utf-8"
        ),
    )


async def _handle_connection(
    handler: Handler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            request = await read_request(reader)
            if request is None:
                return
            response = await handler(request)
        except HttpError as exc:
            response = HttpResponse(exc.status, {"error": exc.message})
        except Exception as exc:  # noqa: BLE001 - connection isolation
            response = HttpResponse(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        await write_response(writer, response)
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def serve_http(
    handler: Handler, host: str, port: int
) -> asyncio.AbstractServer:
    """Start an HTTP server feeding *handler*; returns the server.

    ``port=0`` binds an ephemeral port — read the actual one from
    ``server.sockets[0].getsockname()[1]``.
    """

    async def connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(handler, reader, writer)

    return await asyncio.start_server(connection, host=host, port=port)
