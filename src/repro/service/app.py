"""ServiceApp — routes, admission control and the warm query path.

One :class:`ServiceApp` is a resident query engine: it owns a
:class:`~repro.service.registry.GraphRegistry` (warm
``PreparedGraph`` LRU), a :class:`~repro.batch.cache.ResultCache`
(the same content-addressed cache the batch layer fills), a bounded
admission queue feeding a small thread pool, and the metrics counters.
The HTTP layer (:mod:`repro.service.http`) is a thin shell around
:meth:`ServiceApp.handle`; every route is equally reachable in-process
via :meth:`dispatch` / :meth:`request`, which is how the tests and the
README quickstart exercise it without sockets.

Routes::

    GET  /healthz            liveness + queue depth
    GET  /metrics            counters, cache hit rate, p50/p95 latency
    GET  /v1/datasets        resolvable graph names (uploads + Table II)
    POST /v1/graphs          upload an edge-list pair -> named graph
    POST /v1/solve           one dcsad/dcsga (top-k via "k") query
    POST /v1/batch           a batch of typed queries (PR-3 vocabulary)
    POST /v1/stream/replay   replay an event log -> alerts + stats

Answer semantics are the engine envelope's: a ``/v1/solve`` response's
``result`` field is exactly the :meth:`~repro.engine.envelope.
SolveResult.to_record` JSON that ``repro dcsad --json`` prints — same
keys, same canonical payload bytes — with only the out-of-band
``timings`` differing run to run.  Cached answers are reconstructed
from the canonical payload, so a hit is byte-identical to a fresh
solve.

Admission control: compute requests enter a bounded
:class:`asyncio.Queue`; a full queue means an immediate ``429`` (and a
``rejected`` counter tick) instead of unbounded buffering.  ``workers``
asyncio consumers bridge the queue to a thread pool where
:func:`~repro.batch.executor.run_guarded` — the batch executor's own
per-query guard — runs the solve.  In a pool thread ``SIGALRM`` cannot
fire, so the request deadline is enforced at the awaiting side: the
client gets its ``504`` on time even if the solve thread runs on.
Graph preparation (registry resolution, uploads, event-log parsing) is
offloaded to the same pool, so the event loop — and ``/healthz`` —
stays responsive while a large graph is synthesised.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import re
import time
from concurrent.futures import ThreadPoolExecutor
from contextvars import ContextVar
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.batch.cache import ResultCache, cache_key
from repro.batch.executor import (
    BatchExecutor,
    BatchResult,
    execute_payload,
    run_guarded,
)
from repro.batch.plan import event_log_fingerprint
from repro.batch.queries import BatchQuery, assign_qids, query_from_dict
from repro.engine.envelope import SolveRequest, solve
from repro.engine.registry import resolve_backend
from repro.engine.prepared import PreparedGraph
from repro.exceptions import BackendUnavailableError, InputMismatchError
from repro.obs.logs import ACCESS_LOGGER, SLOW_LOGGER
from repro.obs.prometheus import render_exposition
from repro.obs.trace import new_trace_id, recording
from repro.service.http import HttpError, HttpRequest, HttpResponse
from repro.service.metrics import ServiceMetrics
from repro.service.registry import GraphRegistry
from repro.service.sessions import (
    SessionFailedError,
    SessionLimitError,
    SessionManager,
    events_from_records,
)
from repro.stream.events import EventLog, read_events

__all__ = [
    "ServiceApp",
    "ServiceDeadlineError",
    "ServiceOverloadedError",
]

#: Longest long-poll wait the alerts route grants (seconds); bounds
#: how long a connection may sit on the loop however large the client's
#: ``wait`` parameter is.
_MAX_LONG_POLL = 30.0

#: Sleep between long-poll feed checks.  Plain polling (rather than a
#: per-session condition) keeps the route loop-agnostic: sessions are
#: touched from many event loops (``request`` runs one per call) and
#: from pool threads, where asyncio primitives would not travel.
_LONG_POLL_TICK = 0.02

#: Keys of a solve record that ride outside the canonical answer.
_OUT_OF_BAND = ("timings", "provenance")

#: Extra seconds the awaiting side grants beyond the query budget
#: before answering 504 (covers queue hop and result marshalling).
_TIMEOUT_GRACE = 0.05

#: Seconds between event-loop scheduling-lag probes.
_LAG_PROBE_INTERVAL = 0.25

#: A client-supplied request id is honoured only in this shape; anything
#: else (header injection, unbounded length) is replaced with a fresh id.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")

#: The request id of the request being handled on this context (empty
#: outside a request).  Lets the slow-query log correlate without
#: threading the id through every route signature.
_REQUEST_ID: ContextVar[str] = ContextVar("repro_request_id", default="")

_access_log = logging.getLogger(ACCESS_LOGGER)
_slow_log = logging.getLogger(SLOW_LOGGER)


class ServiceOverloadedError(RuntimeError):
    """Raised when the admission queue is full (maps to HTTP 429)."""


class ServiceDeadlineError(RuntimeError):
    """Raised when an admitted request exceeds its await-side deadline
    (maps to HTTP 504; the abandoned work may finish in the
    background)."""


class _Job:
    """One admitted unit of work and the future its requester awaits."""

    __slots__ = ("work", "future", "abandoned")

    def __init__(
        self, work: Callable[[], Any], future: "asyncio.Future[Any]"
    ) -> None:
        self.work = work
        self.future = future
        #: set when the requester gave up (504 already sent) — a job
        #: that has not started yet is skipped instead of computed
        self.abandoned = False


def _field_int(body: Dict[str, Any], name: str, default: int) -> int:
    """An integer field, accepting JSON generators' integral floats."""
    value = body.get(name, default)
    if isinstance(value, bool):
        raise InputMismatchError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise InputMismatchError(
                f"{name} must be an integer, got {value!r}"
            )
        return int(value)
    if not isinstance(value, int):
        raise InputMismatchError(f"{name} must be an integer, got {value!r}")
    return value


def _field_optional_int(
    body: Dict[str, Any], name: str
) -> Optional[int]:
    if body.get(name) is None:
        return None
    return _field_int(body, name, 0)


def _field_float(
    body: Dict[str, Any], name: str, default: float
) -> float:
    value = body.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InputMismatchError(f"{name} must be a number, got {value!r}")
    return float(value)


def _field_bool(body: Dict[str, Any], name: str) -> bool:
    """A strict boolean field — ``"false"`` must not mean ``True``."""
    value = body.get(name, False)
    if not isinstance(value, bool):
        raise InputMismatchError(f"{name} must be a boolean, got {value!r}")
    return value


class ServiceApp:
    """The resident DCS query engine behind ``repro serve``.

    Parameters
    ----------
    registry / cache:
        Share or inject state; fresh instances by default.  Pass a
        directory-backed :class:`~repro.batch.cache.ResultCache` to
        persist answers across restarts.
    workers:
        Concurrent solves (asyncio consumers = pool threads).  Solvers
        are pure-Python and GIL-bound, so the default of 1 gives honest
        FIFO latency; raise it when solves block on little CPU.
    max_pending:
        Bound of the admission queue; a full queue answers 429.
    timeout:
        Default per-request solve budget in seconds (a request's own
        ``timeout`` field overrides it); ``None`` = unbounded.  On
        ``/v1/batch`` the budget is per query, so the request deadline
        is ``timeout x len(queries)``.
    batch_workers / batch_mode:
        Forwarded to the :class:`~repro.batch.executor.BatchExecutor`
        serving ``/v1/batch`` submissions.
    warm_capacity / scale:
        Shape the default :class:`GraphRegistry` (ignored when a
        registry is injected).
    max_sessions / session_ttl / session_budget_cells:
        Stream-session admission: how many tenants may be resident
        (429 past the limit), after how many idle seconds a session
        expires (``None`` = never), and the registry's soft memory
        budget in cells that session charges count against
        (``session_budget_cells`` only shapes the default registry).
    access_log:
        Emit one structured JSON access record (INFO on
        ``repro.service.access``) per handled request.  Off by
        default — and INFO is below the root logger's threshold, so
        even when on, nothing prints until
        :func:`repro.obs.logs.configure_logging` (``repro serve
        --access-log``) attaches a handler.
    slow_query_seconds:
        When set, compute requests slower than this log a WARNING on
        ``repro.service.slow``.  ``None`` (the default) disables the
        check entirely so the default service stays silent (WARNING
        would otherwise reach logging's last-resort handler).
    worker_id / shm_store / on_export:
        Cluster wiring (``repro serve --workers N``).  *worker_id*
        tags metrics snapshots and access-log records and prefixes
        stream-session ids (``w3-1``) so the router can route by sid
        alone.  *shm_store* / *on_export* are forwarded to the default
        :class:`GraphRegistry` so cold builds export their CSR arrays
        into shared memory and announce the segment to siblings
        (ignored when a registry is injected).  All default to off —
        a plain single-process ``ServiceApp()`` is byte-identical to
        previous releases.
    """

    def __init__(
        self,
        registry: Optional[GraphRegistry] = None,
        cache: Optional[ResultCache] = None,
        *,
        workers: int = 1,
        max_pending: int = 32,
        timeout: Optional[float] = None,
        batch_workers: int = 1,
        batch_mode: str = "serial",
        warm_capacity: int = 8,
        scale: float = 0.25,
        max_sessions: int = 32,
        session_ttl: Optional[float] = None,
        session_budget_cells: Optional[int] = None,
        access_log: bool = False,
        slow_query_seconds: Optional[float] = None,
        worker_id: Optional[int] = None,
        shm_store: Optional[Any] = None,
        on_export: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.worker_id = worker_id
        self.registry = (
            registry
            if registry is not None
            else GraphRegistry(
                capacity=warm_capacity,
                scale=scale,
                budget_cells=session_budget_cells,
                shm_store=shm_store,
                on_export=on_export,
            )
        )
        self.cache = cache if cache is not None else ResultCache()
        self.sessions = SessionManager(
            self.registry,
            max_sessions=max_sessions,
            ttl=session_ttl,
            sid_prefix="s" if worker_id is None else f"w{worker_id}",
        )
        self.metrics = ServiceMetrics()
        self.workers = workers
        self.max_pending = max_pending
        self.timeout = timeout
        self.batch_workers = batch_workers
        self.batch_mode = batch_mode
        self.access_log = access_log
        self.slow_query_seconds = slow_query_seconds
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[_Job]"] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._routes: Dict[
            Tuple[str, str],
            Callable[[HttpRequest], Awaitable[HttpResponse]],
        ] = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/metrics"): self._metrics,
            ("GET", "/v1/datasets"): self._datasets,
            ("POST", "/v1/graphs"): self._upload,
            ("POST", "/v1/solve"): self._solve,
            ("POST", "/v1/batch"): self._batch,
            ("POST", "/v1/stream/replay"): self._stream_replay,
            ("POST", "/v1/stream/sessions"): self._session_create,
            ("GET", "/v1/stream/sessions"): self._session_list,
        }
        self._known_paths = {path for _, path in self._routes}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _ensure_started(self) -> None:
        """Bind queue, consumers and pool to the running event loop.

        Re-binding on a *new* loop (repeated ``asyncio.run`` in scripts
        and doctests) is supported: the previous loop's tasks died with
        it, only the thread pool needs an explicit shutdown.
        """
        loop = asyncio.get_running_loop()
        if self._loop is loop:
            return
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._loop = loop
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers + 1,  # +1 keeps prep off solve slots
            thread_name_prefix="repro-service",
        )
        self._tasks = [
            loop.create_task(self._consume()) for _ in range(self.workers)
        ]
        self._tasks.append(loop.create_task(self._probe_loop_lag()))

    async def aclose(self) -> None:
        """Stop consumers and release the thread pool."""
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._tasks = []
        self._loop = None
        self._queue = None
        self._pool = None

    async def _consume(self) -> None:
        """One admission consumer: queue -> thread pool -> future."""
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                if job.abandoned:
                    continue
                loop = asyncio.get_running_loop()
                outcome = await loop.run_in_executor(self._pool, job.work)
                if not job.future.done():
                    job.future.set_result(outcome)
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.cancel()
                raise
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                if not job.future.done():
                    job.future.set_exception(exc)
            finally:
                self._queue.task_done()

    async def _probe_loop_lag(self) -> None:
        """Measure event-loop scheduling lag on a fixed cadence.

        Each probe asks to sleep :data:`_LAG_PROBE_INTERVAL` seconds;
        the overshoot is time the loop spent unable to schedule — the
        direct symptom of blocking work on the loop (the thing
        :meth:`_run_blocking` exists to prevent).
        """
        while True:
            before = time.perf_counter()
            await asyncio.sleep(_LAG_PROBE_INTERVAL)
            lag = time.perf_counter() - before - _LAG_PROBE_INTERVAL
            self.metrics.observe_loop_lag(max(0.0, lag))

    @property
    def pending(self) -> int:
        """Requests admitted but not yet picked up by a consumer."""
        return self._queue.qsize() if self._queue is not None else 0

    async def _run_blocking(self, fn: Callable[[], Any]) -> Any:
        """Run blocking preparation work off the event loop.

        Registry resolution, uploads and event-log parsing are CPU /
        IO work that would otherwise freeze every in-flight request
        (including ``/healthz``) for their duration.  Prep goes through
        the same bounded admission queue as solves — expensive work a
        request triggers *anywhere* counts against ``max_pending`` and
        sheds with a 429 on overflow, never queues without bound.
        """
        return await self._submit(fn, None)

    async def _submit(
        self, work: Callable[[], Any], deadline: Optional[float]
    ) -> Any:
        """Admit *work*; await its outcome, bounding the wait.

        Raises :class:`ServiceOverloadedError` when the queue is full
        and :class:`ServiceDeadlineError` when *deadline* passes first
        — the job is then abandoned (skipped if not yet started; left
        to finish in the background if it is), and the requester gets
        its answer on schedule.
        """
        await self._ensure_started()
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        job = _Job(work, loop.create_future())
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.metrics.observe_rejection()
            raise ServiceOverloadedError(
                f"admission queue full ({self.max_pending} pending); "
                "retry later"
            ) from None
        if deadline is None or deadline <= 0:
            return await job.future
        try:
            return await asyncio.wait_for(
                asyncio.shield(job.future), deadline + _TIMEOUT_GRACE
            )
        except asyncio.TimeoutError:
            job.abandoned = True
            raise ServiceDeadlineError(
                f"request exceeded its {deadline}s deadline"
            ) from None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one request; every failure maps to a JSON error.

        Every response — success or error — echoes an ``X-Request-Id``
        header: the client's own (when well-formed) or a fresh id.  The
        id is held in a context variable for the duration of routing so
        the slow-query log can correlate without plumbing.
        """
        start = time.perf_counter()
        supplied = request.headers.get("x-request-id", "")
        request_id = (
            supplied if _REQUEST_ID_RE.match(supplied) else new_trace_id()
        )
        token = _REQUEST_ID.set(request_id)
        try:
            response = await self._route_guarded(request)
        finally:
            _REQUEST_ID.reset(token)
        response.headers["X-Request-Id"] = request_id
        # Unmatched paths share one metrics bucket so scanner traffic
        # cannot grow the route table (and /metrics) without bound;
        # per-session paths collapse onto their {id} template for the
        # same reason.
        route = self._route_label(request.path)
        self.metrics.observe_request(route, response.status)
        if self.access_log:
            extra = {
                "request_id": request_id,
                "method": request.method,
                "path": request.path,
                "route": route,
                "status": response.status,
                "seconds": round(time.perf_counter() - start, 6),
            }
            if self.worker_id is not None:
                extra["worker"] = self.worker_id
            _access_log.info("access", extra=extra)
        return response

    async def _route_guarded(self, request: HttpRequest) -> HttpResponse:
        """Routing with the failure -> status map applied."""
        try:
            return await self._route(request)
        except HttpError as exc:
            return HttpResponse(exc.status, {"error": exc.message})
        except (ServiceOverloadedError, SessionLimitError) as exc:
            return HttpResponse(
                429, {"error": str(exc)}, headers={"Retry-After": "1"}
            )
        except SessionFailedError as exc:
            return HttpResponse(409, {"error": str(exc)})
        except ServiceDeadlineError as exc:
            return HttpResponse(
                504, {"status": "timeout", "error": str(exc)}
            )
        except KeyError as exc:
            message = str(exc.args[0]) if exc.args else str(exc)
            return HttpResponse(404, {"error": message})
        except (
            InputMismatchError,
            BackendUnavailableError,  # a RuntimeError, still the client's ask
            ValueError,
            TypeError,
        ) as exc:
            return HttpResponse(
                400, {"error": f"{type(exc).__name__}: {exc}"}
            )
        except Exception as exc:  # noqa: BLE001 - service must answer
            return HttpResponse(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    def _route_label(self, path: str) -> str:
        """The metrics bucket of *path* (templated session ids)."""
        if path in self._known_paths:
            return path
        parts = self._session_parts(path)
        if parts is not None:
            _, tail = parts
            suffix = f"/{tail}" if tail else ""
            return f"/v1/stream/sessions/{{id}}{suffix}"
        return "(unmatched)"

    @staticmethod
    def _session_parts(path: str) -> Optional[Tuple[str, str]]:
        """Split a per-session path into ``(sid, tail)``.

        ``/v1/stream/sessions/s-1`` -> ``("s-1", "")``;
        ``/v1/stream/sessions/s-1/events`` -> ``("s-1", "events")``;
        anything else (including the collection path itself) -> None.
        """
        prefix = "/v1/stream/sessions/"
        if not path.startswith(prefix):
            return None
        rest = path[len(prefix) :]
        if not rest:
            return None
        pieces = rest.split("/")
        if len(pieces) == 1:
            return pieces[0], ""
        if len(pieces) == 2 and pieces[1] in ("events", "alerts"):
            return pieces[0], pieces[1]
        return None

    async def _route(self, request: HttpRequest) -> HttpResponse:
        handler = self._routes.get((request.method, request.path))
        if handler is not None:
            return await handler(request)
        parts = self._session_parts(request.path)
        if parts is not None:
            sid, tail = parts
            if tail == "":
                if request.method == "GET":
                    return await self._session_info(request, sid)
                if request.method == "DELETE":
                    return await self._session_close(request, sid)
            elif tail == "events" and request.method == "POST":
                return await self._session_events(request, sid)
            elif tail == "alerts" and request.method == "GET":
                return await self._session_alerts(request, sid)
            raise HttpError(405, f"{request.method} not allowed here")
        if request.path in self._known_paths:
            raise HttpError(405, f"{request.method} not allowed here")
        raise HttpError(404, f"no route {request.method} {request.path}")

    async def dispatch(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> HttpResponse:
        """In-process request — what the HTTP shell would deliver.

        *path* may carry a query string (``.../alerts?cursor=3``),
        parsed exactly as the socket shell parses it; *headers* are
        lower-cased the way :func:`~repro.service.http.read_request`
        normalises them.
        """
        raw = b"" if body is None else json.dumps(body).encode("utf-8")
        parts = urlsplit(path)
        return await self.handle(
            HttpRequest(
                method=method.upper(),
                path=parts.path,
                query=dict(parse_qsl(parts.query)),
                headers={
                    name.lower(): value
                    for name, value in (headers or {}).items()
                },
                body=raw,
            )
        )

    def request(
        self, method: str, path: str, body: Any = None
    ) -> Tuple[int, Any]:
        """Synchronous :meth:`dispatch` (scripts, doctests, tests).

        Returns ``(status, payload)``.  Each call runs on a private
        event loop via :func:`asyncio.run`; the app re-binds its queue
        and consumers transparently.  Consumers are closed before the
        loop dies — an abandoned coroutine garbage-collected on a
        closed loop raises at unpredictable moments (the next call
        would re-bind and orphan them anyway).
        """

        async def call() -> HttpResponse:
            try:
                return await self.dispatch(method, path, body)
            finally:
                # Threaded callers race to re-bind the app to their own
                # loops; only the thread whose loop owns the tasks may
                # close them (the others' orphans die with their loops,
                # exactly the pre-existing behaviour).
                if self._loop is asyncio.get_running_loop():
                    await self.aclose()

        response = asyncio.run(call())
        return response.status, response.payload

    # ------------------------------------------------------------------
    # introspection routes
    # ------------------------------------------------------------------
    async def _healthz(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            200,
            {
                "status": "ok",
                "uptime_seconds": round(self.metrics.uptime_seconds, 3),
                "pending": self.pending,
                "warm_prepared": self.registry.warm_count,
                "sessions": self.sessions.active,
            },
        )

    async def _metrics(self, request: HttpRequest) -> HttpResponse:
        snapshot = self.metrics.snapshot(
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            warm_prepared=self.registry.warm_count,
            warm_capacity=self.registry.capacity,
            warm_hits=self.registry.warm_hits,
            warm_evictions=self.registry.evictions,
            pending=self.pending,
            sessions=self.sessions.snapshot(),
            cold_builds=self.registry.cold_builds,
            shared_attaches=self.registry.shared_attaches,
            worker=self.worker_id,
        )
        # Content negotiation: ?format=prometheus or an Accept header
        # asking for text/plain gets the text exposition; everything
        # else keeps the historical JSON bytes.  Both forms are derived
        # from the same snapshot dict.
        wants_text = request.query.get(
            "format"
        ) == "prometheus" or "text/plain" in request.headers.get(
            "accept", ""
        )
        if wants_text:
            return HttpResponse(
                200,
                render_exposition(snapshot),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        return HttpResponse(200, snapshot)

    async def _datasets(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            200,
            {
                "graphs": self.registry.names(),
                "warm": self.registry.warm_names(),
            },
        )

    # ------------------------------------------------------------------
    # graph uploads
    # ------------------------------------------------------------------
    async def _upload(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "upload body must be a JSON object")
        for field in ("name", "g1", "g2"):
            if not isinstance(body.get(field), str):
                raise HttpError(
                    400, f"upload needs a string {field!r} field"
                )
        cap = body.get("cap")
        alpha = _field_float(body, "alpha", 1.0)
        flip = _field_bool(body, "flip")
        discrete = _field_bool(body, "discrete")
        cap_value = None if cap is None else _field_float(body, "cap", 0.0)

        def register() -> PreparedGraph:
            return self.registry.register_pair(
                body["name"],
                body["g1"],
                body["g2"],
                alpha=alpha,
                flip=flip,
                discrete=discrete,
                cap=cap_value,
            )

        prepared = await self._run_blocking(register)
        return HttpResponse(
            200,
            {
                "name": body["name"],
                "fingerprint": prepared.fingerprint,
                "vertices": prepared.gd.num_vertices,
                "edges": prepared.gd.num_edges,
                "warm_prepared": self.registry.warm_count,
            },
        )

    # ------------------------------------------------------------------
    # compute routes
    # ------------------------------------------------------------------
    def _effective_timeout(self, body: Dict[str, Any]) -> Optional[float]:
        if body.get("timeout") is None:
            return self.timeout
        return _field_float(body, "timeout", 0.0)

    async def _serve_query(
        self,
        fingerprint: str,
        params: Dict[str, Any],
        work: Callable[[], Dict[str, Any]],
        timeout: Optional[float],
        rebuild_hit: Callable[[Dict[str, Any]], Dict[str, Any]],
    ) -> HttpResponse:
        """The shared compute protocol of ``/v1/solve`` and the replay
        route: content-addressed cache lookup, guarded execution under
        the admission queue, cache fill, and the ok / 422 / 504 map.

        *work* produces the full result record; the canonical part
        (out-of-band keys stripped) is what the cache stores, and
        *rebuild_hit* turns a stored payload back into a response
        record on a hit.
        """
        start = time.perf_counter()
        key = cache_key(fingerprint, params)
        hit = self.cache.get(key)
        if hit is not None:
            seconds = time.perf_counter() - start
            self.metrics.observe_query("ok", seconds)
            return HttpResponse(
                200,
                {
                    "status": "ok",
                    "cached": True,
                    "fingerprint": fingerprint,
                    "seconds": round(seconds, 6),
                    "result": rebuild_hit(hit["payload"]),
                },
            )
        try:
            status, value, _ = await self._submit(
                lambda: run_guarded(work, timeout), timeout
            )
        except ServiceDeadlineError as exc:
            status, value = "timeout", str(exc)
        elapsed = time.perf_counter() - start
        self.metrics.observe_query(status, elapsed)
        if (
            self.slow_query_seconds is not None
            and elapsed >= self.slow_query_seconds
        ):
            _slow_log.warning(
                "slow_query",
                extra={
                    "request_id": _REQUEST_ID.get(),
                    "fingerprint": fingerprint,
                    "status": status,
                    "seconds": round(elapsed, 6),
                },
            )
        if status == "ok":
            timings = value.get("timings")
            phases = (
                timings.get("phases") if isinstance(timings, dict) else None
            )
            if isinstance(phases, dict) and phases:
                self.metrics.observe_phases(phases)
            canonical = {
                k: v for k, v in value.items() if k not in _OUT_OF_BAND
            }
            self.cache.put(
                key, {"status": "ok", "payload": canonical, "error": None}
            )
            return HttpResponse(
                200,
                {
                    "status": "ok",
                    "cached": False,
                    "fingerprint": fingerprint,
                    "seconds": round(elapsed, 6),
                    "result": value,
                },
            )
        return HttpResponse(
            504 if status == "timeout" else 422,
            {
                "status": status,
                "fingerprint": fingerprint,
                "error": value,
            },
        )

    async def _solve(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "solve body must be a JSON object")
        ref = body.get("graph")
        if not isinstance(ref, str):
            raise HttpError(400, "solve needs a string 'graph' reference")
        kind = str(body.get("kind", "dcsad"))
        # Fail bad requests at admission time, not inside a worker —
        # unknown backend names (UnknownBackendError, a ValueError) and
        # registered-but-unavailable backends (BackendUnavailableError)
        # both map to 400.  The *canonical* backend name goes into the
        # params: aliases ("heap" for "python") must share one cache
        # entry, and a cached hit must replay the same bytes a fresh
        # solve of either spelling would produce.
        backend_name = resolve_backend(
            str(body.get("backend", "python"))
        ).name
        params: Dict[str, Any] = {
            "kind": kind,
            "backend": backend_name,
            "k": _field_int(body, "k", 1),
            "tol_scale": _field_float(body, "tol_scale", 1e-2),
        }
        if kind == "dcsad":
            params["strategy"] = str(body.get("strategy", "vertices"))
            if params["strategy"] not in ("vertices", "edges"):
                raise HttpError(
                    400, f"unknown removal strategy {params['strategy']!r}"
                )
        solve_request = SolveRequest.from_params(kind, params)
        prepared = await self._run_blocking(
            lambda: self.registry.resolve(ref)
        )
        fingerprint = prepared.fingerprint

        def solve_work() -> Dict[str, Any]:
            # Recording here — inside the pool thread — gives each
            # solve its own span tree; the derived breakdown rides back
            # in timings["phases"] and feeds the /metrics phase gauges.
            # The canonical answer bytes are unaffected (phases are
            # out-of-band, like solve_seconds).
            with recording():
                return solve(solve_request, prepared).to_record()

        def rebuild_hit(payload: Dict[str, Any]) -> Dict[str, Any]:
            record = dict(payload)
            record["timings"] = {}
            record["provenance"] = {
                "backend": backend_name,
                "fingerprint": fingerprint,
            }
            return record

        return await self._serve_query(
            fingerprint,
            params,
            solve_work,
            self._effective_timeout(body),
            rebuild_hit,
        )

    async def _batch(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        records = body.get("queries") if isinstance(body, dict) else body
        if not isinstance(records, list) or not records:
            raise HttpError(
                400,
                "batch body must be a non-empty JSON array of query "
                "objects (or {'queries': [...]})",
            )

        # Network clients may only name *server-published* inputs:
        # registered graphs and (bounded) dataset references.  The
        # file-path vocabulary of `repro batch` (g1/g2/events) would
        # let a remote client make the server read arbitrary local
        # files; event streams have their own inline-text route.
        for record in records:
            if not isinstance(record, dict):
                raise HttpError(
                    400, f"query record must be an object: {record!r}"
                )
            banned = {"g1", "g2", "events"} & set(record)
            if banned:
                raise HttpError(
                    400,
                    f"field(s) {sorted(banned)} name server-side files; "
                    "the HTTP batch route accepts 'graph' and 'dataset' "
                    "sources only (use /v1/stream/replay for event text)",
                )
            if "scale" in record:
                scale = _field_float(record, "scale", 1.0)
                if scale > max(1.0, self.registry.scale):
                    raise HttpError(
                        400,
                        f"dataset scale {scale} exceeds this server's "
                        f"limit of {max(1.0, self.registry.scale)}",
                    )

        def parse() -> List[BatchQuery]:
            def resolve_graph(ref: str) -> Any:
                # The warm PreparedGraph itself is handed to the
                # executor: the plan adopts its fingerprint (no
                # re-derivation), the serial path solves on it
                # directly, and the pooled path pickles it — which for
                # a shared-memory-backed preparation is a tiny stub
                # that re-attaches the same segment in each pool
                # worker instead of re-pickling the CSR buffers.
                return self.registry.resolve(ref)

            return assign_qids(
                query_from_dict(record, graph_resolver=resolve_graph)
                for record in records
            )

        queries: List[BatchQuery] = await self._run_blocking(parse)
        timeout = (
            self._effective_timeout(body)
            if isinstance(body, dict)
            else self.timeout
        )
        executor = BatchExecutor(
            workers=self.batch_workers,
            mode=self.batch_mode,
            cache=self.cache,
            timeout=timeout,
        )

        def work() -> List[BatchResult]:
            return executor.run(queries)

        # The budget is per query (matching `repro batch --timeout`),
        # and SIGALRM cannot fire in a pool thread, so the enforceable
        # request deadline is the whole batch's worth of budgets.
        deadline = None if timeout is None else timeout * len(queries)
        results = await self._submit(work, deadline)
        for result in results:
            self.metrics.observe_query(result.status, result.seconds)
        stats = executor.stats
        return HttpResponse(
            200,
            {
                "status": "ok"
                if all(r.status == "ok" for r in results)
                else "partial",
                "results": [json.loads(r.to_json()) for r in results],
                "stats": {
                    "queries": stats.queries,
                    "mode": stats.mode,
                    "preps_built": stats.preps_built,
                    "preps_shared": stats.preps_shared,
                    "cache_hits": stats.cache_hits,
                    "solved": stats.solved,
                    "errors": stats.errors,
                    "timeouts": stats.timeouts,
                },
            },
        )

    async def _stream_replay(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "replay body must be a JSON object")
        text = body.get("events")
        if not isinstance(text, str) or not text.strip():
            raise HttpError(
                400, "replay needs an 'events' field of event-file text"
            )
        params: Dict[str, Any] = {
            "kind": "stream",
            "window": _field_int(body, "window", 5),
            "measure": str(body.get("measure", "average_degree")),
            "policy": str(body.get("policy", "exact")),
            "warmup": _field_optional_int(body, "warmup"),
            "threshold": _field_float(body, "threshold", 0.0),
            "steps": _field_optional_int(body, "steps"),
            "backend": str(body.get("backend", "python")),
            "tol_scale": _field_float(body, "tol_scale", 1e-2),
        }
        if params["measure"] not in ("average_degree", "affinity"):
            raise HttpError(400, f"unknown measure {params['measure']!r}")
        if params["policy"] not in ("exact", "gated"):
            raise HttpError(400, f"unknown policy {params['policy']!r}")

        def parse() -> Tuple[EventLog, str]:
            log = read_events(io.StringIO(text))
            if not log.universe:
                raise InputMismatchError(
                    "event log declares no vertices and has no events"
                )
            return log, event_log_fingerprint(log)

        log, fingerprint = await self._run_blocking(parse)

        def replay_work() -> Dict[str, Any]:
            return execute_payload("stream", params, log)

        return await self._serve_query(
            fingerprint,
            params,
            replay_work,
            self._effective_timeout(body),
            lambda payload: payload,
        )

    # ------------------------------------------------------------------
    # stream sessions
    # ------------------------------------------------------------------
    async def _session_create(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "session body must be a JSON object")
        universe = body.get("universe")
        graph = body.get("graph")
        if universe is not None and (
            not isinstance(universe, list)
            or not universe
            or not all(isinstance(v, str) for v in universe)
        ):
            raise HttpError(
                400, "'universe' must be a non-empty array of vertex names"
            )
        if graph is not None and not isinstance(graph, str):
            raise HttpError(400, "'graph' must be a registered name")
        kwargs: Dict[str, Any] = {
            "window": _field_int(body, "window", 5),
            "measure": str(body.get("measure", "average_degree")),
            "policy": str(body.get("policy", "exact")),
            "min_score": _field_float(body, "threshold", 0.0),
            "backend": str(body.get("backend", "python")),
            "k": _field_int(body, "k", 1),
            "tol_scale": _field_float(body, "tol_scale", 1e-2),
        }
        warmup = _field_optional_int(body, "warmup")
        if warmup is not None:
            kwargs["warmup"] = warmup
        if body.get("drift_ratio") is not None:
            kwargs["drift_ratio"] = _field_float(body, "drift_ratio", 0.5)
        if body.get("hold_margin") is not None:
            kwargs["hold_margin"] = _field_float(body, "hold_margin", 0.5)
        if body.get("topk_strategy") is not None:
            kwargs["topk_strategy"] = str(body["topk_strategy"])
        self.sessions.expire_idle()

        def create() -> Any:
            # Resolving a graph reference may build cold — pool work.
            return self.sessions.create(
                universe=universe, graph=graph, **kwargs
            )

        session = await self._run_blocking(create)
        return HttpResponse(
            200,
            {
                "session": session.sid,
                "config": dict(session.config),
                "sessions": self.sessions.active,
            },
        )

    async def _session_list(self, request: HttpRequest) -> HttpResponse:
        self.sessions.expire_idle()
        return HttpResponse(
            200,
            {
                "sessions": self.sessions.ids(),
                "stats": self.sessions.snapshot(),
            },
        )

    async def _session_info(
        self, request: HttpRequest, sid: str
    ) -> HttpResponse:
        return HttpResponse(200, self.sessions.describe(sid))

    async def _session_close(
        self, request: HttpRequest, sid: str
    ) -> HttpResponse:
        summary = self.sessions.close(sid)
        if summary is None:
            raise HttpError(404, f"no session {sid!r}")
        return HttpResponse(200, {"closed": sid, "final": summary})

    async def _session_events(
        self, request: HttpRequest, sid: str
    ) -> HttpResponse:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "events body must be a JSON object")
        events = events_from_records(body.get("events"))
        advance_to = _field_optional_int(body, "advance_to")
        # Existence and health are checked inline so a bad sid answers
        # 404 (and a failed session 409) without burning a queue slot.
        self.sessions.get(sid)
        timeout = self._effective_timeout(body)
        start = time.perf_counter()

        def work() -> Tuple[List[Dict[str, Any]], int, int]:
            return self.sessions.apply_events(
                sid, events, advance_to=advance_to
            )

        try:
            alerts, cursor, step = await self._submit(work, timeout)
        except ServiceDeadlineError:
            self.metrics.observe_query(
                "timeout", time.perf_counter() - start
            )
            raise
        except (
            ServiceOverloadedError,
            SessionFailedError,
            InputMismatchError,
            KeyError,
        ):
            raise  # admission / client errors; not solver outcomes
        except Exception as exc:  # noqa: BLE001 - solver fault boundary
            self.metrics.observe_query("error", time.perf_counter() - start)
            return HttpResponse(
                422,
                {
                    "status": "error",
                    "session": sid,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
        self.metrics.observe_query("ok", time.perf_counter() - start)
        return HttpResponse(
            200,
            {
                "status": "ok",
                "session": sid,
                "step": step,
                "alerts": alerts,
                "cursor": cursor,
            },
        )

    async def _session_alerts(
        self, request: HttpRequest, sid: str
    ) -> HttpResponse:
        try:
            cursor = int(request.query.get("cursor", "0"))
            wait = float(request.query.get("wait", "0"))
        except ValueError as exc:
            raise HttpError(400, f"bad query parameter: {exc}") from None
        deadline = time.monotonic() + min(max(wait, 0.0), _MAX_LONG_POLL)
        while True:
            alerts, next_cursor, step = self.sessions.alerts_since(
                sid, cursor
            )
            if alerts or time.monotonic() >= deadline:
                return HttpResponse(
                    200,
                    {
                        "session": sid,
                        "alerts": alerts,
                        "cursor": next_cursor,
                        "step": step,
                        "stats": self.sessions.phase_stats(sid),
                    },
                )
            await asyncio.sleep(_LONG_POLL_TICK)

    # ------------------------------------------------------------------
    # the network face
    # ------------------------------------------------------------------
    async def start_server(
        self, host: str = "127.0.0.1", port: int = 8765
    ) -> asyncio.AbstractServer:
        """Bind the HTTP shell; ``port=0`` picks an ephemeral port."""
        from repro.service.http import serve_http

        await self._ensure_started()
        return await serve_http(self.handle, host, port)
