"""Multi-tenant live stream sessions — the resident monitoring surface.

``/v1/stream/replay`` answers "what would the engine have said over
this finished log?"; a *session* answers it live: a tenant creates one
(:class:`SessionManager.create`), posts event batches as its network
produces them, and polls the accumulated alert feed by cursor.  Each
session wraps one :class:`~repro.stream.engine.StreamingDCSEngine`
(window, measure, policy, ``k`` incumbents — the full engine
vocabulary), so the paper's anomaly-monitoring story runs resident
instead of per-request.

Isolation is the design centre:

* **State** — every session owns its engine and alert feed behind its
  own lock; batches for different sessions run concurrently on the
  service pool, batches for one session serialise.
* **Faults** — a solver blowing up mid-step marks *that* session failed
  (:class:`SessionFailedError` on further use; ``close`` still works)
  and touches nothing else; client mistakes (unknown vertices,
  out-of-order timestamps) are rejected *before* any event is applied,
  so a 400 never leaves a session half-ingested.
* **Memory** — a session charges its live footprint (universe +
  difference edges + window history) to the
  :class:`~repro.service.registry.GraphRegistry`, whose budget sheds
  warm preparations LRU-first under session pressure; idle sessions
  expire after ``ttl`` seconds and refund their charge.

Admission control stays with the service: ``max_sessions`` bounds how
many tenants may be resident (:class:`SessionLimitError` maps to 429),
and event batches run through the app's bounded queue, inheriting its
429/504 behaviour.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import InputMismatchError
from repro.service.registry import GraphRegistry
from repro.stream.engine import StreamingDCSEngine
from repro.stream.events import EdgeEvent

__all__ = [
    "SessionFailedError",
    "SessionLimitError",
    "SessionManager",
    "StreamSession",
    "events_from_records",
]


class SessionLimitError(RuntimeError):
    """Too many resident sessions (maps to HTTP 429)."""


class SessionFailedError(RuntimeError):
    """This session's solver failed; it only accepts ``close`` now
    (maps to HTTP 409 — the conflict is with the session's state, not
    the request)."""


def events_from_records(records: Any) -> List[EdgeEvent]:
    """Parse a JSON event batch (``[{"t","u","v","w"}, ...]``).

    Field validation is the :class:`~repro.stream.events.EdgeEvent`
    constructor's (self-loops, negative steps, non-finite weights all
    raise there); this wrapper only enforces the envelope shape so a
    malformed batch reads as a client error, never a server one.
    """
    if not isinstance(records, list) or not records:
        raise InputMismatchError(
            "events must be a non-empty JSON array of "
            '{"t", "u", "v", "w"} records'
        )
    events: List[EdgeEvent] = []
    for record in records:
        if not isinstance(record, dict):
            raise InputMismatchError(
                f"event record must be an object: {record!r}"
            )
        unknown = set(record) - {"t", "u", "v", "w"}
        if unknown:
            raise InputMismatchError(
                f"unknown event field(s) {sorted(unknown)}"
            )
        for field in ("t", "u", "v"):
            if field not in record:
                raise InputMismatchError(
                    f"event record missing field {field!r}: {record!r}"
                )
        t = record["t"]
        if isinstance(t, bool) or not isinstance(t, int):
            raise InputMismatchError(f"event 't' must be an integer: {t!r}")
        w = record.get("w", 1.0)
        if isinstance(w, bool) or not isinstance(w, (int, float)):
            raise InputMismatchError(f"event 'w' must be a number: {w!r}")
        events.append(
            EdgeEvent(t=t, u=str(record["u"]), v=str(record["v"]), w=float(w))
        )
    return events


class StreamSession:
    """One tenant: an engine, its alert feed, and its bookkeeping.

    All mutation happens under :attr:`lock` (the manager acquires it);
    the alert feed is append-only, so cursors are simple indices and a
    reader never blocks a writer for long.
    """

    def __init__(
        self,
        sid: str,
        engine: StreamingDCSEngine,
        config: Dict[str, Any],
    ) -> None:
        self.sid = sid
        self.engine = engine
        #: the creation parameters echoed back by GET (diagnostics)
        self.config = config
        self.lock = threading.Lock()
        #: every alert the engine ever emitted, as JSON-ready dicts
        self.alerts: List[Dict[str, Any]] = []
        self.created = time.monotonic()
        self.last_used = self.created
        #: error text once the solver failed (session is then read/close
        #: only); ``None`` while healthy
        self.failed: Optional[str] = None
        self.events_seen = 0
        self.batches = 0

    @property
    def cells(self) -> int:
        """Resident footprint proxy: universe + live edge structures."""
        return (
            len(self.engine.universe)
            + self.engine.difference.num_edges
            + self.engine.accumulator.active_edges
        )

    @property
    def owner(self) -> str:
        """The registry charge key of this session."""
        return f"session:{self.sid}"

    def describe(self) -> Dict[str, Any]:
        """JSON summary (caller holds :attr:`lock`)."""
        stats = self.engine.stats
        return {
            "session": self.sid,
            "config": dict(self.config),
            "step": self.engine.step,
            "events": self.events_seen,
            "batches": self.batches,
            "alerts": len(self.alerts),
            "cells": self.cells,
            "failed": self.failed,
            "idle_seconds": round(time.monotonic() - self.last_used, 3),
            "stats": {
                "steps": stats.steps,
                "full_solves": stats.full_solves,
                "cache_hits": stats.cache_hits,
                "incumbent_holds": stats.incumbent_holds,
                "local_probes": stats.local_probes,
                "drift_fallbacks": stats.drift_fallbacks,
            },
        }


class SessionManager:
    """Owns every resident session; all public methods are thread-safe.

    The manager's lock only guards the session table (create / lookup /
    close); per-session work runs under the session's own lock, so slow
    ingestion in one tenant never blocks another tenant's poll.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        max_sessions: int = 32,
        ttl: Optional[float] = None,
        sid_prefix: str = "s",
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive when set")
        self.registry = registry
        self.max_sessions = max_sessions
        self.ttl = ttl
        #: leading token of generated session ids — cluster workers use
        #: ``w<i>`` so the router can route session traffic by sid alone
        self.sid_prefix = sid_prefix
        self._sessions: Dict[str, StreamSession] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self.created = 0
        self.closed = 0
        self.expired = 0
        self.failures = 0
        self.events_total = 0
        self.alerts_total = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        universe: Optional[Iterable[Any]] = None,
        graph: Optional[str] = None,
        **engine_kwargs: Any,
    ) -> StreamSession:
        """Create a session over an explicit *universe* or a registered
        *graph* (whose vertex set becomes the universe).

        Engine keyword arguments (``window``, ``measure``, ``policy``,
        ``k``, ``min_score``, ...) pass through to
        :class:`~repro.stream.engine.StreamingDCSEngine`, which
        validates them — a bad configuration fails here, before the
        session exists.  Raises :class:`SessionLimitError` when
        ``max_sessions`` tenants are already resident.
        """
        if (universe is None) == (graph is None):
            raise InputMismatchError(
                "create needs exactly one of 'universe' (vertex list) "
                "or 'graph' (registered name)"
            )
        if graph is not None:
            # May build cold — deliberately outside the manager lock.
            prepared = self.registry.resolve(graph)
            members: List[Any] = sorted(
                prepared.gd.vertices(), key=repr
            )
        else:
            members = [str(v) for v in universe]  # type: ignore[union-attr]
        engine = StreamingDCSEngine(members, **engine_kwargs)
        config: Dict[str, Any] = {
            "window": engine.window,
            "measure": engine.measure,
            "policy": engine.policy,
            "warmup": engine.warmup,
            "backend": engine.backend,
            "threshold": engine.min_score,
            "k": engine.k,
            "universe_size": len(engine.universe),
        }
        if graph is not None:
            config["graph"] = graph
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions} "
                    "resident); close or let one expire first"
                )
            sid = f"{self.sid_prefix}-{next(self._ids)}"
            session = StreamSession(sid, engine, config)
            self._sessions[sid] = session
            self.created += 1
        self.registry.charge(session.owner, session.cells)
        return session

    def get(self, sid: str) -> StreamSession:
        """The live session *sid*; ``KeyError`` (-> 404) if absent."""
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise KeyError(f"no session {sid!r}")
        return session

    def close(self, sid: str) -> Optional[Dict[str, Any]]:
        """Tear down *sid*; returns its final summary, or ``None`` if
        it was not resident (idempotent — a double close is not an
        error worth a 404 race)."""
        with self._lock:
            session = self._sessions.pop(sid, None)
            if session is None:
                return None
            self.closed += 1
        self.registry.discharge(session.owner)
        with session.lock:
            return session.describe()

    def expire_idle(self, now: Optional[float] = None) -> List[str]:
        """Close every session idle beyond ``ttl``; returns their ids.

        *now* is injectable (tests) and defaults to the monotonic
        clock.  With no ``ttl`` this is a no-op.
        """
        if self.ttl is None:
            return []
        moment = time.monotonic() if now is None else now
        with self._lock:
            stale = [
                sid
                for sid, session in self._sessions.items()
                if moment - session.last_used > self.ttl
            ]
            for sid in stale:
                session = self._sessions.pop(sid)
                self.registry.discharge(session.owner)
                self.expired += 1
        return stale

    # ------------------------------------------------------------------
    # per-session operations
    # ------------------------------------------------------------------
    def apply_events(
        self,
        sid: str,
        events: List[EdgeEvent],
        advance_to: Optional[int] = None,
    ) -> Tuple[List[Dict[str, Any]], int, int]:
        """Ingest one batch; returns ``(new_alerts, cursor, step)``.

        The whole batch is validated against the engine's universe and
        clock *before* the first event applies, so client errors
        (:class:`~repro.exceptions.InputMismatchError` — 400) leave
        the session exactly as it was.  Any exception past that point
        is a solver fault: the session is marked failed (further
        batches raise :class:`SessionFailedError`) and the error
        propagates so the route can answer 422 — other sessions are
        untouched.
        """
        session = self.get(sid)
        with session.lock:
            if session.failed is not None:
                raise SessionFailedError(
                    f"session {sid} failed earlier ({session.failed}); "
                    "close it and create a new one"
                )
            session.last_used = time.monotonic()
            engine = session.engine
            clock = engine.step
            for event in events:
                for vertex in (event.u, event.v):
                    if vertex not in engine.universe:
                        # Deliberately not VertexNotFound (a KeyError,
                        # which the routes map to 404): a bad *batch*
                        # is a 400 against an existing resource.
                        raise InputMismatchError(
                            f"vertex {vertex!r} is not in this "
                            "session's universe"
                        )
                if event.t < clock:
                    raise InputMismatchError(
                        f"event at t={event.t} is behind the session "
                        f"clock (open step {clock})"
                    )
                clock = event.t
            if advance_to is not None and advance_to < clock:
                raise InputMismatchError(
                    f"advance_to={advance_to} is behind the session "
                    f"clock (step {clock})"
                )
            fresh: List[Any] = []
            try:
                for event in events:
                    fresh.extend(engine.ingest(event))
                if advance_to is not None:
                    fresh.extend(engine.advance_to(advance_to))
            except Exception as exc:
                session.failed = f"{type(exc).__name__}: {exc}"
                with self._lock:
                    self.failures += 1
                raise
            session.events_seen += len(events)
            session.batches += 1
            new_alerts = [_alert_record(alert) for alert in fresh]
            session.alerts.extend(new_alerts)
            cursor = len(session.alerts)
            step = engine.step
            cells = session.cells
        with self._lock:
            self.events_total += len(events)
            self.alerts_total += len(new_alerts)
        self.registry.charge(session.owner, cells)
        return new_alerts, cursor, step

    def alerts_since(
        self, sid: str, cursor: int
    ) -> Tuple[List[Dict[str, Any]], int, int]:
        """Alert feed from *cursor*: ``(alerts, next_cursor, step)``.

        Cursors are feed indices: ``0`` replays everything, the
        returned ``next_cursor`` resumes after what was read.  A cursor
        beyond the feed is a client error (400), not an empty read —
        it can only come from a stale or corrupted cursor.
        """
        session = self.get(sid)
        with session.lock:
            if cursor < 0 or cursor > len(session.alerts):
                raise InputMismatchError(
                    f"cursor {cursor} out of range "
                    f"[0, {len(session.alerts)}]"
                )
            session.last_used = time.monotonic()
            return (
                list(session.alerts[cursor:]),
                len(session.alerts),
                session.engine.step,
            )

    def phase_stats(self, sid: str) -> Dict[str, Any]:
        """The session engine's solve-scheduling phase stats.

        The per-session observability block the alerts route serves:
        scheduling counters (full solves, cache hits, holds, probes,
        fallbacks), current dirty-region sizes, and the last answered
        step's :class:`~repro.stream.engine.StepProfile`.
        """
        session = self.get(sid)
        with session.lock:
            return session.engine.phase_stats()

    def describe(self, sid: str) -> Dict[str, Any]:
        """The session's JSON summary plus its maintained top-k."""
        session = self.get(sid)
        with session.lock:
            record = session.describe()
            record["topk"] = [
                {
                    "rank": item.rank,
                    "score": item.objective,
                    "subset": sorted(str(v) for v in item.subset),
                }
                for item in session.engine.current_topk()
            ]
            return record

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        with self._lock:
            return len(self._sessions)

    def ids(self) -> List[str]:
        """Resident session ids, oldest first."""
        with self._lock:
            return list(self._sessions)

    def snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` sessions section."""
        with self._lock:
            active = len(self._sessions)
            charged = sum(s.cells for s in self._sessions.values())
        return {
            "active": active,
            "limit": self.max_sessions,
            "created": self.created,
            "closed": self.closed,
            "expired": self.expired,
            "failed": self.failures,
            "events": self.events_total,
            "alerts": self.alerts_total,
            "charged_cells": charged,
        }


def _alert_record(alert: Any) -> Dict[str, Any]:
    """A StreamAlert as the JSON dict the feed stores and serves."""
    return {
        "step": alert.step,
        "score": alert.score,
        "size": len(alert.subset),
        "subset": sorted(str(v) for v in alert.subset),
        "measure": alert.measure,
        "source": alert.source,
    }
