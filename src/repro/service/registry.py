"""The service's graph registry: named inputs -> warm ``PreparedGraph``.

A long-running query service lives or dies by what it can keep warm:
resolving a dataset name means synthesising a graph, and the first
query on any graph pays for ``GD+``, the CSR freezes and the content
fingerprint.  :class:`GraphRegistry` makes each of those a
once-per-name cost:

* **Dataset references** — any Table II name from
  :func:`repro.datasets.registry.entry_names` (e.g.
  ``"DBLP/Weighted/Emerging"``), built at the registry's ``scale`` on
  first use.
* **Uploaded pairs** — edge-list text for ``(G1, G2)`` registered under
  a caller-chosen name via :meth:`register_pair`; the assembled
  difference graph is retained, so an evicted preparation can be
  rebuilt without re-uploading.

Warm preparations live in an LRU of ``capacity`` entries: each holds a
fingerprinted :class:`~repro.engine.prepared.PreparedGraph` (``GD+`` +
CSRs built lazily, shared across every request that names it).  The
LRU bounds resident memory however many datasets the traffic touches;
``warm_hits`` / ``evictions`` feed the ``/metrics`` route.
"""

from __future__ import annotations

import io
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.core.difference import assemble_difference
from repro.engine.prepared import PreparedGraph
from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.engine.shm import SharedGraphStore

__all__ = ["GraphRegistry"]

#: callback fired after a cold build is exported to shared memory:
#: ``(ref, fingerprint, segment_name)`` — cluster workers announce the
#: segment to their siblings through this.
ExportHook = Callable[[str, str, str], None]


class GraphRegistry:
    """Named graphs resolved once each into a warm LRU of preparations.

    Thread-safe: the service resolves and uploads from pool threads
    (to keep the event loop responsive), so every mutation of the LRU
    and the upload table happens under one lock — concurrent requests
    for the same name build its preparation once, not twice.
    """

    def __init__(
        self,
        capacity: int = 8,
        scale: float = 0.25,
        max_uploads: int = 64,
        budget_cells: Optional[int] = None,
        shm_store: Optional["SharedGraphStore"] = None,
        on_export: Optional[ExportHook] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("warm capacity must be at least 1")
        if max_uploads < 1:
            raise ValueError("max_uploads must be at least 1")
        if budget_cells is not None and budget_cells < 1:
            raise ValueError("budget_cells must be positive when set")
        self.capacity = capacity
        self.scale = scale
        #: bound on retained uploads — named graphs are server state a
        #: client creates, so they must not grow memory without limit
        self.max_uploads = max_uploads
        #: soft memory budget in cells (vertices + edges); ``None``
        #: disables shedding.  Session charges count against it, and
        #: warm entries are shed LRU-first while the total overflows.
        self.budget_cells = budget_cells
        #: zero-copy store: when set, every cold build is exported to a
        #: shared-memory segment (and announced via *on_export*), and
        #: names registered through :meth:`register_shared` resolve by
        #: attaching a sibling worker's segment instead of rebuilding
        self.shm_store = shm_store
        self.on_export = on_export
        #: name -> warm preparation, most recently used last
        self._warm: "OrderedDict[str, PreparedGraph]" = OrderedDict()
        #: uploaded difference graphs by name (eviction-safe source)
        self._uploads: Dict[str, Graph] = {}
        #: name -> announced shared-segment name (attach lazily on use)
        self._shared_refs: Dict[str, str] = {}
        #: owner -> cells currently charged (stream sessions and other
        #: resident state report their footprint here so the one LRU
        #: arbitrates all of the service's graph memory)
        self._charges: Dict[str, int] = {}
        self._lock = threading.RLock()
        self.resolutions = 0
        self.warm_hits = 0
        self.evictions = 0
        #: full prepare passes actually paid by this process — the
        #: prepare-once-per-host assertion sums this across workers
        self.cold_builds = 0
        #: preparations served by attaching a sibling's segment
        self.shared_attaches = 0

    # ------------------------------------------------------------------
    # uploads
    # ------------------------------------------------------------------
    def register_pair(
        self,
        name: str,
        g1_text: str,
        g2_text: str,
        alpha: float = 1.0,
        flip: bool = False,
        discrete: bool = False,
        cap: Optional[float] = None,
    ) -> PreparedGraph:
        """Parse an uploaded ``(G1, G2)`` edge-list pair and warm it.

        The universes are aligned the way :func:`repro.graph.io.read_pair`
        aligns file pairs, the difference graph is assembled with the
        given transform, and the resulting preparation enters the warm
        cache under *name* (replacing any previous upload of that name).
        """
        if not name or any(ch.isspace() for ch in name):
            raise InputMismatchError(
                f"graph name {name!r} must be non-empty without whitespace"
            )
        if "/" in name:
            # "/" is the dataset-reference namespace (Data/Setting/GDType);
            # keeping uploads out of it means a name is never ambiguous.
            raise InputMismatchError(
                f"graph name {name!r} may not contain '/' "
                "(reserved for dataset references)"
            )
        g1 = read_edge_list(io.StringIO(g1_text))
        g2 = read_edge_list(io.StringIO(g2_text))
        for vertex in g1.vertices():
            g2.add_vertex(vertex)
        for vertex in g2.vertices():
            g1.add_vertex(vertex)
        gd = assemble_difference(
            g1, g2, alpha=alpha, flipped=flip, discrete=discrete, cap=cap
        )
        prepared = PreparedGraph(gd)
        prepared.fingerprint  # noqa: B018 - eagerly pay the content hash
        with self._lock:
            if (
                name not in self._uploads
                and len(self._uploads) >= self.max_uploads
            ):
                raise InputMismatchError(
                    f"upload limit reached ({self.max_uploads} named "
                    "graphs); forget() one before registering more"
                )
            # Admit under the lock *before* the export: a rejected
            # upload must never be announced cluster-wide or leak a
            # shared-memory segment — the limit bounds both.
            self._uploads[name] = gd
        self._finish_cold_build(name, prepared)
        with self._lock:
            evicted = self._warm.pop(name, None)
            self._admit(name, prepared)
        if evicted is not None and evicted is not prepared:
            self._release(evicted)
        return prepared

    def forget(self, name: str) -> bool:
        """Drop an uploaded graph (and its warm entry); True if present."""
        with self._lock:
            dropped = self._warm.pop(name, None)
            self._shared_refs.pop(name, None)
            present = self._uploads.pop(name, None) is not None
        if dropped is not None:
            self._release(dropped)
        return present

    # ------------------------------------------------------------------
    # shared-memory topology
    # ------------------------------------------------------------------
    def register_shared(
        self, name: str, fingerprint: str, segment_name: str
    ) -> None:
        """Record that *name* is served from a sibling's shared segment.

        Cluster workers call this when the router broadcasts another
        worker's export announcement.  The attach itself is lazy — it
        happens on the first :meth:`resolve` of *name* — so a worker
        that never sees traffic for the graph never maps it.  A warm
        entry whose fingerprint already matches is left alone.
        """
        with self._lock:
            warm = self._warm.get(name)
            if (
                warm is not None
                and warm.cached_fingerprint != fingerprint
            ):
                # Stale preparation under this name (e.g. re-upload):
                # drop it so the next resolve attaches the new content.
                # Full release — store cache included — or a later
                # announcement of the same segment would hand back an
                # already-closed cached mapping.
                self._warm.pop(name, None)
                self._release(warm)
            self._shared_refs[name] = segment_name

    def _finish_cold_build(self, name: str, prepared: PreparedGraph) -> None:
        """Count a paid prepare pass and export it to shared memory.

        Runs outside the lock (export copies the CSR arrays once).  On
        export the preparation adopts the segment views — the host then
        holds exactly one copy of the frozen arrays — and *on_export*
        announces the segment so sibling workers can attach.
        """
        self.cold_builds += 1
        if self.shm_store is None:
            return
        from repro.exceptions import BackendUnavailableError

        try:
            segment = self.shm_store.export(prepared)
        except (BackendUnavailableError, OSError, ValueError):
            # Shared memory is an optimisation; never fail the build.
            # ValueError covers a squatted-but-never-ready segment (a
            # crashed exporter's leftovers) under this fingerprint.
            return
        prepared.adopt_segment(segment)
        with self._lock:
            self._shared_refs[name] = segment.name
        if self.on_export is not None:
            self.on_export(name, prepared.fingerprint, segment.name)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: str) -> PreparedGraph:
        """The warm preparation of *ref*, building it on first use.

        *ref* is an uploaded name or a dataset reference; unknown names
        raise ``KeyError`` listing the resolvable vocabulary.  Cold
        builds run *outside* the lock so a slow synthesis never stalls
        concurrent warm hits; if two requests race the same cold name,
        the loser discards its build and adopts the winner's (the warm
        entry stays unique).
        """
        with self._lock:
            self.resolutions += 1
            warm = self._warm.get(ref)
            if warm is not None:
                self._warm.move_to_end(ref)
                self.warm_hits += 1
                return warm
            upload = self._uploads.get(ref)
            shared_segment = self._shared_refs.get(ref)
        if shared_segment is not None and self.shm_store is not None:
            attached = self._attach_shared(ref, shared_segment)
            if attached is not None:
                return attached
        if upload is not None:
            prepared = PreparedGraph(upload)
        else:
            from repro.datasets.registry import build_named

            try:
                entry = build_named(ref, scale=self.scale)
            except KeyError:
                raise KeyError(
                    f"unknown graph {ref!r}; resolvable names: "
                    f"{self.names()}"
                ) from None
            prepared = PreparedGraph(entry.graph)
        prepared.fingerprint  # noqa: B018 - cache keys need the identity
        self._finish_cold_build(ref, prepared)
        with self._lock:
            existing = self._warm.get(ref)
            if existing is not None:
                self._warm.move_to_end(ref)
                return existing
            self._admit(ref, prepared)
        return prepared

    def _attach_shared(
        self, ref: str, segment_name: str
    ) -> Optional[PreparedGraph]:
        """Serve *ref* by attaching an announced sibling segment.

        Returns None (after dropping the stale announcement) when the
        segment no longer exists — the owner evicted and unlinked it —
        so the caller falls through to an ordinary cold build.
        """
        from repro.engine.shm import shared_prepared

        assert self.shm_store is not None
        try:
            segment = self.shm_store.attach(segment_name)
        except (FileNotFoundError, ValueError):
            with self._lock:
                if self._shared_refs.get(ref) == segment_name:
                    del self._shared_refs[ref]
            return None
        prepared: PreparedGraph = shared_prepared(segment)
        self.shared_attaches += 1
        with self._lock:
            existing = self._warm.get(ref)
            if existing is not None:
                self._warm.move_to_end(ref)
                return existing
            self._admit(ref, prepared)
        return prepared

    def names(self) -> List[str]:
        """Every resolvable name: uploads first, then the dataset rows."""
        from repro.datasets.registry import entry_names

        with self._lock:
            uploads = sorted(self._uploads)
        return uploads + entry_names()

    # ------------------------------------------------------------------
    # the LRU
    # ------------------------------------------------------------------
    @property
    def warm_count(self) -> int:
        """How many preparations are currently resident."""
        return len(self._warm)

    def warm_names(self) -> List[str]:
        """Resident names, least recently used first."""
        with self._lock:
            return list(self._warm)

    def _admit(self, name: str, prepared: PreparedGraph) -> None:
        with self._lock:
            self._warm[name] = prepared
            self._warm.move_to_end(name)
            while len(self._warm) > self.capacity:
                _, evicted = self._warm.popitem(last=False)
                self.evictions += 1
                self._release(evicted)
            self._shed_locked()

    def _release(self, prepared: PreparedGraph) -> None:
        """Return an evicted preparation's shared segment, if any.

        Drops the store's cached mapping and the preparation's refcount
        unit; the close that drains the in-segment count to zero unlinks
        the name (in-flight solves on POSIX keep their views valid).
        """
        segment = prepared.shm_segment
        if segment is not None and self.shm_store is not None:
            self.shm_store.release(segment.name)
        prepared.release()

    # ------------------------------------------------------------------
    # session memory accounting
    # ------------------------------------------------------------------
    @property
    def charged_cells(self) -> int:
        """Cells currently charged by resident owners (sessions)."""
        with self._lock:
            return sum(self._charges.values())

    def warm_cells(self) -> int:
        """Cells held by warm preparations — charged once per host.

        Shared-memory topology accounting: a segment attached from a
        sibling worker costs this process (almost) nothing — the owner
        already pays for the host's single copy — so attached entries
        charge zero, and two warm names backed by the same fingerprint
        (same segment) are counted once.  Without this, K workers
        attaching one large graph would each charge it fully and the
        LRU would shed warm entries K times too eagerly.
        """
        with self._lock:
            return self._warm_cells_locked()

    def _warm_cells_locked(self) -> int:
        seen: Set[str] = set()
        total = 0
        for prepared in self._warm.values():
            fingerprint = prepared.cached_fingerprint
            if fingerprint is not None:
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
            total += _prepared_cells(prepared)
        return total

    def charge(self, owner: str, cells: int) -> None:
        """Record *owner*'s resident footprint (replacing any previous
        charge) and shed warm entries if the budget overflows.

        Stream sessions call this on every footprint change; the warm
        LRU is the only shrinkable pool, so under session pressure the
        least recently used preparations go first (counted as
        evictions).  Charges themselves are never refused — admission
        control happens at session-creation time, not here.
        """
        if cells < 0:
            raise ValueError("cells must be non-negative")
        with self._lock:
            self._charges[owner] = cells
            self._shed_locked()

    def discharge(self, owner: str) -> None:
        """Drop *owner*'s charge (no-op if absent)."""
        with self._lock:
            self._charges.pop(owner, None)

    def _shed_locked(self) -> None:
        """Evict warm LRU entries while over ``budget_cells``.

        Caller holds the lock.  At least one warm entry is always kept:
        shedding the whole cache under extreme session pressure would
        only turn every query into a cold rebuild without freeing the
        sessions' own memory.
        """
        if self.budget_cells is None:
            return
        charged = sum(self._charges.values())
        while len(self._warm) > 1:
            warm = self._warm_cells_locked()
            if charged + warm <= self.budget_cells:
                break
            _, evicted = self._warm.popitem(last=False)
            self.evictions += 1
            self._release(evicted)


def _prepared_cells(prepared: PreparedGraph) -> int:
    """Footprint proxy of one preparation: vertices + edges of ``GD``.

    Segment *attachers* charge zero — the exporting owner carries the
    host's single copy.  Sizes come from the CSR when one is resident so
    shared preparations are never forced to materialise the dict graph
    just to be measured.
    """
    if prepared.shared_attached:
        return 0
    csr = prepared.csr() if prepared.shm_segment is not None else None
    if csr is not None:
        return csr.n + csr.num_edges
    return prepared.gd.num_vertices + prepared.gd.num_edges
