"""The service's graph registry: named inputs -> warm ``PreparedGraph``.

A long-running query service lives or dies by what it can keep warm:
resolving a dataset name means synthesising a graph, and the first
query on any graph pays for ``GD+``, the CSR freezes and the content
fingerprint.  :class:`GraphRegistry` makes each of those a
once-per-name cost:

* **Dataset references** — any Table II name from
  :func:`repro.datasets.registry.entry_names` (e.g.
  ``"DBLP/Weighted/Emerging"``), built at the registry's ``scale`` on
  first use.
* **Uploaded pairs** — edge-list text for ``(G1, G2)`` registered under
  a caller-chosen name via :meth:`register_pair`; the assembled
  difference graph is retained, so an evicted preparation can be
  rebuilt without re-uploading.

Warm preparations live in an LRU of ``capacity`` entries: each holds a
fingerprinted :class:`~repro.engine.prepared.PreparedGraph` (``GD+`` +
CSRs built lazily, shared across every request that names it).  The
LRU bounds resident memory however many datasets the traffic touches;
``warm_hits`` / ``evictions`` feed the ``/metrics`` route.
"""

from __future__ import annotations

import io
import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.difference import assemble_difference
from repro.engine.prepared import PreparedGraph
from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list

__all__ = ["GraphRegistry"]


class GraphRegistry:
    """Named graphs resolved once each into a warm LRU of preparations.

    Thread-safe: the service resolves and uploads from pool threads
    (to keep the event loop responsive), so every mutation of the LRU
    and the upload table happens under one lock — concurrent requests
    for the same name build its preparation once, not twice.
    """

    def __init__(
        self,
        capacity: int = 8,
        scale: float = 0.25,
        max_uploads: int = 64,
        budget_cells: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("warm capacity must be at least 1")
        if max_uploads < 1:
            raise ValueError("max_uploads must be at least 1")
        if budget_cells is not None and budget_cells < 1:
            raise ValueError("budget_cells must be positive when set")
        self.capacity = capacity
        self.scale = scale
        #: bound on retained uploads — named graphs are server state a
        #: client creates, so they must not grow memory without limit
        self.max_uploads = max_uploads
        #: soft memory budget in cells (vertices + edges); ``None``
        #: disables shedding.  Session charges count against it, and
        #: warm entries are shed LRU-first while the total overflows.
        self.budget_cells = budget_cells
        #: name -> warm preparation, most recently used last
        self._warm: "OrderedDict[str, PreparedGraph]" = OrderedDict()
        #: uploaded difference graphs by name (eviction-safe source)
        self._uploads: Dict[str, Graph] = {}
        #: owner -> cells currently charged (stream sessions and other
        #: resident state report their footprint here so the one LRU
        #: arbitrates all of the service's graph memory)
        self._charges: Dict[str, int] = {}
        self._lock = threading.RLock()
        self.resolutions = 0
        self.warm_hits = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # uploads
    # ------------------------------------------------------------------
    def register_pair(
        self,
        name: str,
        g1_text: str,
        g2_text: str,
        alpha: float = 1.0,
        flip: bool = False,
        discrete: bool = False,
        cap: Optional[float] = None,
    ) -> PreparedGraph:
        """Parse an uploaded ``(G1, G2)`` edge-list pair and warm it.

        The universes are aligned the way :func:`repro.graph.io.read_pair`
        aligns file pairs, the difference graph is assembled with the
        given transform, and the resulting preparation enters the warm
        cache under *name* (replacing any previous upload of that name).
        """
        if not name or any(ch.isspace() for ch in name):
            raise InputMismatchError(
                f"graph name {name!r} must be non-empty without whitespace"
            )
        if "/" in name:
            # "/" is the dataset-reference namespace (Data/Setting/GDType);
            # keeping uploads out of it means a name is never ambiguous.
            raise InputMismatchError(
                f"graph name {name!r} may not contain '/' "
                "(reserved for dataset references)"
            )
        g1 = read_edge_list(io.StringIO(g1_text))
        g2 = read_edge_list(io.StringIO(g2_text))
        for vertex in g1.vertices():
            g2.add_vertex(vertex)
        for vertex in g2.vertices():
            g1.add_vertex(vertex)
        gd = assemble_difference(
            g1, g2, alpha=alpha, flipped=flip, discrete=discrete, cap=cap
        )
        prepared = PreparedGraph(gd)
        prepared.fingerprint  # noqa: B018 - eagerly pay the content hash
        with self._lock:
            if (
                name not in self._uploads
                and len(self._uploads) >= self.max_uploads
            ):
                raise InputMismatchError(
                    f"upload limit reached ({self.max_uploads} named "
                    "graphs); forget() one before registering more"
                )
            self._uploads[name] = gd
            self._warm.pop(name, None)
            self._admit(name, prepared)
        return prepared

    def forget(self, name: str) -> bool:
        """Drop an uploaded graph (and its warm entry); True if present."""
        with self._lock:
            self._warm.pop(name, None)
            return self._uploads.pop(name, None) is not None

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: str) -> PreparedGraph:
        """The warm preparation of *ref*, building it on first use.

        *ref* is an uploaded name or a dataset reference; unknown names
        raise ``KeyError`` listing the resolvable vocabulary.  Cold
        builds run *outside* the lock so a slow synthesis never stalls
        concurrent warm hits; if two requests race the same cold name,
        the loser discards its build and adopts the winner's (the warm
        entry stays unique).
        """
        with self._lock:
            self.resolutions += 1
            warm = self._warm.get(ref)
            if warm is not None:
                self._warm.move_to_end(ref)
                self.warm_hits += 1
                return warm
            upload = self._uploads.get(ref)
        if upload is not None:
            prepared = PreparedGraph(upload)
        else:
            from repro.datasets.registry import build_named

            try:
                entry = build_named(ref, scale=self.scale)
            except KeyError:
                raise KeyError(
                    f"unknown graph {ref!r}; resolvable names: "
                    f"{self.names()}"
                ) from None
            prepared = PreparedGraph(entry.graph)
        prepared.fingerprint  # noqa: B018 - cache keys need the identity
        with self._lock:
            existing = self._warm.get(ref)
            if existing is not None:
                self._warm.move_to_end(ref)
                return existing
            self._admit(ref, prepared)
        return prepared

    def names(self) -> List[str]:
        """Every resolvable name: uploads first, then the dataset rows."""
        from repro.datasets.registry import entry_names

        with self._lock:
            uploads = sorted(self._uploads)
        return uploads + entry_names()

    # ------------------------------------------------------------------
    # the LRU
    # ------------------------------------------------------------------
    @property
    def warm_count(self) -> int:
        """How many preparations are currently resident."""
        return len(self._warm)

    def warm_names(self) -> List[str]:
        """Resident names, least recently used first."""
        with self._lock:
            return list(self._warm)

    def _admit(self, name: str, prepared: PreparedGraph) -> None:
        with self._lock:
            self._warm[name] = prepared
            self._warm.move_to_end(name)
            while len(self._warm) > self.capacity:
                self._warm.popitem(last=False)
                self.evictions += 1
            self._shed_locked()

    # ------------------------------------------------------------------
    # session memory accounting
    # ------------------------------------------------------------------
    @property
    def charged_cells(self) -> int:
        """Cells currently charged by resident owners (sessions)."""
        with self._lock:
            return sum(self._charges.values())

    def warm_cells(self) -> int:
        """Cells held by warm preparations."""
        with self._lock:
            return sum(
                _prepared_cells(p) for p in self._warm.values()
            )

    def charge(self, owner: str, cells: int) -> None:
        """Record *owner*'s resident footprint (replacing any previous
        charge) and shed warm entries if the budget overflows.

        Stream sessions call this on every footprint change; the warm
        LRU is the only shrinkable pool, so under session pressure the
        least recently used preparations go first (counted as
        evictions).  Charges themselves are never refused — admission
        control happens at session-creation time, not here.
        """
        if cells < 0:
            raise ValueError("cells must be non-negative")
        with self._lock:
            self._charges[owner] = cells
            self._shed_locked()

    def discharge(self, owner: str) -> None:
        """Drop *owner*'s charge (no-op if absent)."""
        with self._lock:
            self._charges.pop(owner, None)

    def _shed_locked(self) -> None:
        """Evict warm LRU entries while over ``budget_cells``.

        Caller holds the lock.  At least one warm entry is always kept:
        shedding the whole cache under extreme session pressure would
        only turn every query into a cold rebuild without freeing the
        sessions' own memory.
        """
        if self.budget_cells is None:
            return
        charged = sum(self._charges.values())
        while len(self._warm) > 1:
            warm = sum(_prepared_cells(p) for p in self._warm.values())
            if charged + warm <= self.budget_cells:
                break
            self._warm.popitem(last=False)
            self.evictions += 1


def _prepared_cells(prepared: PreparedGraph) -> int:
    """Footprint proxy of one preparation: vertices + edges of ``GD``."""
    return prepared.gd.num_vertices + prepared.gd.num_edges
