"""Service observability: request counters and latency quantiles.

Everything the ``/metrics`` route serves lives here, maintained as
plain counters — no background threads, no sampling daemons.  Latency
quantiles come from a bounded ring of the most recent observations
(:class:`LatencyWindow`), so p50/p95 reflect *current* behaviour and
memory stays constant however long the service runs.

Thread-safety: counters are mutated from the asyncio loop (request
accounting) *and* from executor threads (query outcomes land where the
work finished), so :class:`ServiceMetrics` guards every mutation and
the snapshot read with one :class:`threading.Lock`.  The ring itself
(:class:`LatencyWindow`) is deliberately unsynchronised — it is always
accessed under its owner's lock; standalone users must provide their
own exclusion.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["LatencyWindow", "ServiceMetrics"]


class LatencyWindow:
    """Ring buffer of recent latencies with nearest-rank quantiles.

    Not itself thread-safe: :class:`ServiceMetrics` serialises access
    under its single lock.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._ring: List[float] = []
        self._next = 0
        self.count = 0

    def add(self, seconds: float) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity
        self.count += 1

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the retained window (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class ServiceMetrics:
    """Counters for one service process, snapshot on demand.

    All mutation and the snapshot read go through ``self._lock`` — the
    one lock the thread-safety contract names.  Hold times are tiny
    (dict increments, one ring write, one sort of ≤ capacity floats on
    snapshot), so contention is irrelevant next to solve times.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests_total = 0
        self.requests_by_route: Dict[str, int] = {}
        self.responses_by_status: Dict[int, int] = {}
        #: outcomes of compute requests (solve / batch / replay)
        self.queries_ok = 0
        self.queries_error = 0
        self.queries_timeout = 0
        #: compute requests refused at admission (429)
        self.rejected = 0
        #: end-to-end latency of compute requests (admission wait
        #: included — it is what the client experiences)
        self.latency = LatencyWindow()
        #: phase -> {"seconds", "calls"}: traced solve time by phase,
        #: accumulated from each solve's timings["phases"] breakdown
        self.solve_phases: Dict[str, Dict[str, float]] = {}
        #: most recent / worst event-loop scheduling lag probes
        self.loop_lag_seconds = 0.0
        self.loop_lag_max_seconds = 0.0

    def observe_request(self, route: str, status: int) -> None:
        """Count one handled request against its route and status."""
        with self._lock:
            self.requests_total += 1
            self.requests_by_route[route] = (
                self.requests_by_route.get(route, 0) + 1
            )
            self.responses_by_status[status] = (
                self.responses_by_status.get(status, 0) + 1
            )

    def observe_query(self, status: str, seconds: float) -> None:
        """Count one compute outcome (``ok`` / ``error`` / ``timeout``)."""
        with self._lock:
            if status == "ok":
                self.queries_ok += 1
            elif status == "timeout":
                self.queries_timeout += 1
            else:
                self.queries_error += 1
            self.latency.add(seconds)

    def observe_rejection(self) -> None:
        """Count one 429 at admission."""
        with self._lock:
            self.rejected += 1

    def observe_phases(self, phases: Mapping[str, float]) -> None:
        """Fold one solve's phase breakdown into the running totals."""
        with self._lock:
            for phase, seconds in phases.items():
                entry = self.solve_phases.get(phase)
                if entry is None:
                    entry = {"seconds": 0.0, "calls": 0}
                    self.solve_phases[phase] = entry
                entry["seconds"] += float(seconds)
                entry["calls"] += 1

    def observe_loop_lag(self, seconds: float) -> None:
        """Record one event-loop scheduling-lag probe."""
        with self._lock:
            self.loop_lag_seconds = seconds
            if seconds > self.loop_lag_max_seconds:
                self.loop_lag_max_seconds = seconds

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started

    def snapshot(
        self,
        cache_hits: int,
        cache_misses: int,
        warm_prepared: int,
        warm_capacity: int,
        warm_hits: int,
        warm_evictions: int,
        pending: int,
        sessions: Optional[Dict[str, Any]] = None,
        cold_builds: int = 0,
        shared_attaches: int = 0,
        worker: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The JSON the ``/metrics`` route serves.

        *sessions* is the :meth:`~repro.service.sessions.
        SessionManager.snapshot` block; ``None`` (embedders that only
        serve query routes) omits the section.  The pre-existing
        sections keep their exact shape; the observability additions
        (``loop``, ``solve_phases``) are new keys alongside them — and
        the Prometheus text form is derived from this same dict by
        :func:`repro.obs.prometheus.render_exposition`.

        *cold_builds* / *shared_attaches* extend the ``warm`` section
        with the zero-copy topology counters (how many full prepare
        passes this process paid vs. how many preparations it served by
        attaching a sibling's shared segment); *worker* tags the whole
        snapshot with this process's cluster worker id, which the
        router surfaces as the ``worker`` label when it merges
        per-worker snapshots.
        """
        lookups = cache_hits + cache_misses
        with self._lock:
            snapshot: Dict[str, Any] = {
                "uptime_seconds": round(self.uptime_seconds, 3),
                "requests": {
                    "total": self.requests_total,
                    "by_route": dict(sorted(self.requests_by_route.items())),
                    "by_status": {
                        str(status): count
                        for status, count in sorted(
                            self.responses_by_status.items()
                        )
                    },
                },
                "queries": {
                    "ok": self.queries_ok,
                    "error": self.queries_error,
                    "timeout": self.queries_timeout,
                    "rejected": self.rejected,
                    "pending": pending,
                },
                "cache": {
                    "hits": cache_hits,
                    "misses": cache_misses,
                    "hit_rate": (cache_hits / lookups) if lookups else 0.0,
                },
                "warm": {
                    "prepared": warm_prepared,
                    "capacity": warm_capacity,
                    "hits": warm_hits,
                    "evictions": warm_evictions,
                    "cold_builds": cold_builds,
                    "shared_attaches": shared_attaches,
                },
                "latency": {
                    "observations": self.latency.count,
                    "p50_seconds": self.latency.quantile(0.50),
                    "p95_seconds": self.latency.quantile(0.95),
                },
                "loop": {
                    "lag_seconds": self.loop_lag_seconds,
                    "lag_max_seconds": self.loop_lag_max_seconds,
                },
                "solve_phases": {
                    phase: dict(entry)
                    for phase, entry in sorted(self.solve_phases.items())
                },
            }
        if sessions is not None:
            snapshot["sessions"] = sessions
        if worker is not None:
            snapshot["worker"] = worker
        return snapshot
