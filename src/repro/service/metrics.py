"""Service observability: request counters and latency quantiles.

Everything the ``/metrics`` route serves lives here, maintained as
plain counters — no background threads, no sampling daemons.  Latency
quantiles come from a bounded ring of the most recent observations
(:class:`LatencyWindow`), so p50/p95 reflect *current* behaviour and
memory stays constant however long the service runs.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["LatencyWindow", "ServiceMetrics"]


class LatencyWindow:
    """Ring buffer of recent latencies with nearest-rank quantiles."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._ring: List[float] = []
        self._next = 0
        self.count = 0

    def add(self, seconds: float) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity
        self.count += 1

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the retained window (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class ServiceMetrics:
    """Counters for one service process, snapshot on demand."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests_total = 0
        self.requests_by_route: Dict[str, int] = {}
        self.responses_by_status: Dict[int, int] = {}
        #: outcomes of compute requests (solve / batch / replay)
        self.queries_ok = 0
        self.queries_error = 0
        self.queries_timeout = 0
        #: compute requests refused at admission (429)
        self.rejected = 0
        #: end-to-end latency of compute requests (admission wait
        #: included — it is what the client experiences)
        self.latency = LatencyWindow()

    def observe_request(self, route: str, status: int) -> None:
        """Count one handled request against its route and status."""
        self.requests_total += 1
        self.requests_by_route[route] = (
            self.requests_by_route.get(route, 0) + 1
        )
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )

    def observe_query(self, status: str, seconds: float) -> None:
        """Count one compute outcome (``ok`` / ``error`` / ``timeout``)."""
        if status == "ok":
            self.queries_ok += 1
        elif status == "timeout":
            self.queries_timeout += 1
        else:
            self.queries_error += 1
        self.latency.add(seconds)

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started

    def snapshot(
        self,
        cache_hits: int,
        cache_misses: int,
        warm_prepared: int,
        warm_capacity: int,
        warm_hits: int,
        warm_evictions: int,
        pending: int,
        sessions: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The JSON the ``/metrics`` route serves.

        *sessions* is the :meth:`~repro.service.sessions.
        SessionManager.snapshot` block; ``None`` (embedders that only
        serve query routes) omits the section.
        """
        lookups = cache_hits + cache_misses
        snapshot: Dict[str, Any] = {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "requests": {
                "total": self.requests_total,
                "by_route": dict(sorted(self.requests_by_route.items())),
                "by_status": {
                    str(status): count
                    for status, count in sorted(
                        self.responses_by_status.items()
                    )
                },
            },
            "queries": {
                "ok": self.queries_ok,
                "error": self.queries_error,
                "timeout": self.queries_timeout,
                "rejected": self.rejected,
                "pending": pending,
            },
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (cache_hits / lookups) if lookups else 0.0,
            },
            "warm": {
                "prepared": warm_prepared,
                "capacity": warm_capacity,
                "hits": warm_hits,
                "evictions": warm_evictions,
            },
            "latency": {
                "observations": self.latency.count,
                "p50_seconds": self.latency.quantile(0.50),
                "p95_seconds": self.latency.quantile(0.95),
            },
        }
        if sessions is not None:
            snapshot["sessions"] = sessions
        return snapshot
