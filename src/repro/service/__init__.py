"""Long-running DCS query service — the resident serving surface.

Every earlier delivery layer pays full process startup per invocation:
``repro dcsad`` imports the library, reads its input, prepares the
graph, solves, exits.  ``repro/service/`` keeps all of that *resident*:
a stdlib-only asyncio HTTP/JSON server whose warm state — named
:class:`~repro.engine.prepared.PreparedGraph` preparations in an LRU
(:class:`~repro.service.registry.GraphRegistry`) and the
content-addressed :class:`~repro.batch.cache.ResultCache` — is shared
across every request, which is what makes interactive DCSAD/DCSGA
querying (the paper's mining-primitive framing) feasible at traffic.

Start it from the CLI (``repro serve --port 8765``) or embed it::

    from repro.service import ServiceApp

    app = ServiceApp(scale=0.25)
    status, body = app.request(
        "POST", "/v1/solve",
        {"graph": "DBLP/Weighted/Emerging", "kind": "dcsad"},
    )

The pieces:

* :mod:`~repro.service.app` — routes, admission control (bounded
  queue -> thread pool, 429 on overflow, per-request deadlines),
  response envelopes;
* :mod:`~repro.service.registry` — named graphs -> warm preparations;
* :mod:`~repro.service.metrics` — counters and latency quantiles
  behind ``/metrics``;
* :mod:`~repro.service.http` — the minimal stdlib HTTP/1.1 shell.
"""

from repro.service.app import (
    ServiceApp,
    ServiceDeadlineError,
    ServiceOverloadedError,
)
from repro.service.http import HttpRequest, HttpResponse
from repro.service.metrics import LatencyWindow, ServiceMetrics
from repro.service.registry import GraphRegistry
from repro.service.sessions import (
    SessionFailedError,
    SessionLimitError,
    SessionManager,
    StreamSession,
)

__all__ = [
    "GraphRegistry",
    "HttpRequest",
    "HttpResponse",
    "LatencyWindow",
    "ServiceApp",
    "ServiceDeadlineError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "SessionFailedError",
    "SessionLimitError",
    "SessionManager",
    "StreamSession",
]
