"""Segment tree over fixed slots with point updates and global arg-min.

The paper (Section IV-B) suggests a segment tree [Bentley 1977] to store
the current degrees of vertices during greedy peeling so that the minimum
degree vertex can be located in ``O(log n)``.  This module implements that
structure:

* slots hold ``float`` keys (vertex degrees),
* a slot can be *deactivated* (its key becomes ``+inf``) when a vertex is
  peeled,
* ``argmin()`` returns the active slot with the smallest key.

It is the alternative backend to :class:`repro.structures.heap.IndexedHeap`
for :func:`repro.peeling.greedy.greedy_peel`.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

_INF = math.inf


class MinSegmentTree:
    """Fixed-size segment tree supporting point update and global arg-min.

    Parameters
    ----------
    keys:
        Initial keys; the tree indexes slots ``0 .. len(keys) - 1``.
    """

    __slots__ = ("_size", "_offset", "_key", "_arg", "_active")

    def __init__(self, keys: Iterable[float]) -> None:
        values = list(keys)
        self._size = len(values)
        if self._size == 0:
            raise ValueError("segment tree needs at least one slot")
        self._offset = 1
        while self._offset < self._size:
            self._offset *= 2
        total = 2 * self._offset
        self._key = [_INF] * total
        self._arg = [-1] * total
        self._active = [False] * self._size
        for i, value in enumerate(values):
            self._key[self._offset + i] = value
            self._arg[self._offset + i] = i
            self._active[i] = True
        for node in range(self._offset - 1, 0, -1):
            self._pull(node)

    def __len__(self) -> int:
        return self._size

    @property
    def active_count(self) -> int:
        """Number of slots that have not been deactivated."""
        return sum(self._active)

    def is_active(self, slot: int) -> bool:
        """Whether *slot* still participates in arg-min queries."""
        self._check(slot)
        return self._active[slot]

    def key_of(self, slot: int) -> float:
        """Current key of *slot*; ``KeyError`` if it has been deactivated."""
        self._check(slot)
        if not self._active[slot]:
            raise KeyError(f"slot {slot} is deactivated")
        return self._key[self._offset + slot]

    def update(self, slot: int, key: float) -> None:
        """Set the key of an active *slot* to *key*."""
        self._check(slot)
        if not self._active[slot]:
            raise KeyError(f"slot {slot} is deactivated")
        node = self._offset + slot
        self._key[node] = key
        self._refresh_path(node)

    def adjust(self, slot: int, delta: float) -> None:
        """Add *delta* to the key of an active *slot*."""
        self.update(slot, self.key_of(slot) + delta)

    def deactivate(self, slot: int) -> float:
        """Remove *slot* from future queries; return its last key."""
        key = self.key_of(slot)
        self._active[slot] = False
        node = self._offset + slot
        self._key[node] = _INF
        self._refresh_path(node)
        return key

    def argmin(self) -> Tuple[int, float]:
        """Return ``(slot, key)`` of the active slot with minimum key."""
        if self._arg[1] < 0 or self._key[1] is _INF and not any(self._active):
            raise IndexError("argmin on an empty segment tree")
        if self.active_count == 0:
            raise IndexError("argmin on an empty segment tree")
        return self._arg[1], self._key[1]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check(self, slot: int) -> None:
        if not 0 <= slot < self._size:
            raise IndexError(f"slot {slot} out of range [0, {self._size})")

    def _pull(self, node: int) -> None:
        left, right = 2 * node, 2 * node + 1
        if self._key[left] <= self._key[right]:
            self._key[node] = self._key[left]
            self._arg[node] = self._arg[left]
        else:
            self._key[node] = self._key[right]
            self._arg[node] = self._arg[right]

    def _refresh_path(self, node: int) -> None:
        node //= 2
        while node >= 1:
            self._pull(node)
            node //= 2

    def check_invariant(self) -> bool:
        """Verify internal consistency; used by the test suite."""
        for node in range(1, self._offset):
            left, right = 2 * node, 2 * node + 1
            expected = min(self._key[left], self._key[right])
            if self._key[node] != expected:
                return False
        return True
