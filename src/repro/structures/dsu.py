"""Disjoint-set union (union-find) with path compression and union by size.

Used to maintain connected components when refining DCSAD solutions
(line 9 of Algorithm 2 keeps the densest connected component) and by the
synthetic dataset generators to guarantee connectivity of planted
structures.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSets:
    """Union-find over arbitrary hashable items.

    Items are added lazily on first use, so callers never pre-register the
    universe.
    """

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._size: Dict[T, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        """Number of items registered (not the number of sets)."""
        return len(self._parent)

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    @property
    def set_count(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def add(self, item: T) -> None:
        """Register *item* as a singleton set if it is new."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._count += 1

    def find(self, item: T) -> T:
        """Return the canonical representative of *item*'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: T, b: T) -> bool:
        """Merge the sets of *a* and *b*; return True if they were distinct."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: T, b: T) -> bool:
        """Whether *a* and *b* are in the same set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def size_of(self, item: T) -> int:
        """Size of the set containing *item*."""
        return self._size[self.find(item)]

    def sets(self) -> Iterator[List[T]]:
        """Yield every set as a list of its members."""
        groups: Dict[T, List[T]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        yield from groups.values()
