"""Addressable binary heap with arbitrary key updates.

The greedy peeling algorithm (Algorithm 1 of the paper) repeatedly removes
the vertex of minimum induced degree.  Removing a vertex changes the
degrees of its neighbours — and because difference graphs carry *negative*
edge weights, a neighbour's degree may **increase** as well as decrease.
A plain ``heapq`` only supports lazy deletion; this module provides an
indexed heap where any item's key can be raised or lowered in
``O(log n)``.

Example
-------
>>> h = IndexedHeap()
>>> h.push("a", 3.0)
>>> h.push("b", 1.0)
>>> h.update("a", 0.5)
>>> h.pop_min()
('a', 0.5)
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)


class IndexedHeap(Generic[T]):
    """A min-heap keyed by arbitrary hashable items with updatable priorities.

    Supports ``push``, ``pop_min``, ``peek_min``, ``update`` (raise *or*
    lower a key), ``remove`` and membership tests, all in ``O(log n)``
    except membership which is ``O(1)``.
    """

    __slots__ = ("_items", "_keys", "_pos")

    def __init__(self, pairs: Iterable[Tuple[T, float]] = ()) -> None:
        self._items: list[T] = []
        self._keys: list[float] = []
        self._pos: dict[T, int] = {}
        for item, key in pairs:
            self.push(item, key)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[T]:
        """Iterate over items in *heap order* (not sorted order)."""
        return iter(self._items)

    def key_of(self, item: T) -> float:
        """Return the current key of *item*.

        Raises ``KeyError`` if the item is not in the heap.
        """
        return self._keys[self._pos[item]]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def push(self, item: T, key: float) -> None:
        """Insert *item* with priority *key*.

        Raises ``ValueError`` if the item is already present; use
        :meth:`update` to change an existing key.
        """
        if item in self._pos:
            raise ValueError(f"item {item!r} already in heap")
        self._items.append(item)
        self._keys.append(key)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def update(self, item: T, key: float) -> None:
        """Change the priority of *item* to *key* (raise or lower)."""
        i = self._pos[item]
        old = self._keys[i]
        if key == old:
            return
        self._keys[i] = key
        if key < old:
            self._sift_up(i)
        else:
            self._sift_down(i)

    def adjust(self, item: T, delta: float) -> None:
        """Add *delta* to the current key of *item*."""
        self.update(item, self.key_of(item) + delta)

    def push_or_update(self, item: T, key: float) -> None:
        """Insert *item* or, if present, reset its priority to *key*."""
        if item in self._pos:
            self.update(item, key)
        else:
            self.push(item, key)

    def peek_min(self) -> Tuple[T, float]:
        """Return ``(item, key)`` with the minimum key without removing it."""
        if not self._items:
            raise IndexError("peek from an empty heap")
        return self._items[0], self._keys[0]

    def pop_min(self) -> Tuple[T, float]:
        """Remove and return ``(item, key)`` with the minimum key."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        item, key = self._items[0], self._keys[0]
        self._delete_at(0)
        return item, key

    def remove(self, item: T) -> float:
        """Remove *item* from the heap and return its key."""
        i = self._pos[item]
        key = self._keys[i]
        self._delete_at(i)
        return key

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _delete_at(self, i: int) -> None:
        last = len(self._items) - 1
        item = self._items[i]
        if i != last:
            self._swap(i, last)
        self._items.pop()
        self._keys.pop()
        del self._pos[item]
        if i <= last - 1 and self._items:
            # Restore heap order at the slot that received the moved item.
            self._sift_down(i)
            self._sift_up(i)

    def _swap(self, i: int, j: int) -> None:
        self._items[i], self._items[j] = self._items[j], self._items[i]
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._pos[self._items[i]] = i
        self._pos[self._items[j]] = j

    def _sift_up(self, i: int) -> None:
        while i > 0:
            parent = (i - 1) >> 1
            if self._keys[i] < self._keys[parent]:
                self._swap(i, parent)
                i = parent
            else:
                return

    def _sift_down(self, i: int) -> None:
        n = len(self._items)
        while True:
            left = 2 * i + 1
            right = left + 1
            smallest = i
            if left < n and self._keys[left] < self._keys[smallest]:
                smallest = left
            if right < n and self._keys[right] < self._keys[smallest]:
                smallest = right
            if smallest == i:
                return
            self._swap(i, smallest)
            i = smallest

    def check_invariant(self) -> bool:
        """Verify the heap property; used by the test suite."""
        n = len(self._items)
        for i in range(1, n):
            parent = (i - 1) >> 1
            if self._keys[i] < self._keys[parent]:
                return False
        for item, pos in self._pos.items():
            if self._items[pos] != item:
                return False
        return len(self._pos) == n
