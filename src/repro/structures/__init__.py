"""Low-level data structures used by the graph algorithms.

* :class:`~repro.structures.heap.IndexedHeap` — addressable binary heap
  with arbitrary key updates (greedy peeling needs *increase*-key because
  difference graphs carry negative edge weights).
* :class:`~repro.structures.segment_tree.MinSegmentTree` — the paper's
  suggested structure for locating the minimum-degree vertex.
* :class:`~repro.structures.dsu.DisjointSets` — union-find for connected
  component maintenance.
"""

from repro.structures.dsu import DisjointSets
from repro.structures.heap import IndexedHeap
from repro.structures.segment_tree import MinSegmentTree

__all__ = ["DisjointSets", "IndexedHeap", "MinSegmentTree"]
