"""Typed batch queries — the request vocabulary of the batch service.

A :class:`BatchQuery` names *what to mine* (``kind``), *on which input*
(a :class:`GraphSource`), and *with which parameters* (difference
transform + solver settings).  The vocabulary deliberately mirrors the
``repro`` CLI so that one JSON record and one CLI invocation describe
the same computation:

========  =====================================================
kind      computation
========  =====================================================
dcsad     DCSGreedy (``k > 1`` -> iterated top-k, Alg. 2 rounds)
dcsga     NewSEA (``k > 1`` -> ranked positive cliques)
stream    streaming replay of an event file -> alert log
========  =====================================================

Sources come in four flavours: ``files`` (two edge-list paths, the CLI
input format), ``registry`` (a Table II row by ``Data/Setting/GDType``
name), ``events`` (an event file for ``stream`` queries) and ``inline``
(an in-memory graph or pair — programmatic callers and benchmarks;
not JSON-serialisable).

Everything JSON-facing round-trips through :func:`query_to_dict` /
:func:`query_from_dict`; :func:`read_queries` accepts either a JSON
array or JSONL, one query object per line.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine.prepared import PreparedGraph

#: Query kinds (``"stream"`` is accepted as ``"stream_replay"`` too).
KINDS = ("dcsad", "dcsga", "stream")

#: Backend names always accepted without consulting the registry
#: (kept for backward compatibility of the constant); any other name is
#: validated against the live engine registry at construction time, so
#: a query may request every registered backend — ``native``, aliases,
#: plugins — and a typo still fails fast.
BACKENDS = ("python", "sparse")


@dataclass(frozen=True)
class GraphSource:
    """Where a query's input comes from.

    Exactly one flavour is populated:

    * ``files``    — *g1* and *g2* edge-list paths;
    * ``registry`` — *dataset* (``Data/Setting/GDType``) at *scale*;
    * ``events``   — *events* path (``stream`` queries only);
    * ``inline``   — *graph* (a prebuilt difference graph) or *pair*
      (``(G1, G2)``); in-memory only.
    """

    kind: str
    g1: Optional[str] = None
    g2: Optional[str] = None
    dataset: Optional[str] = None
    scale: float = 1.0
    events: Optional[str] = None
    graph: Optional[Union[Graph, "PreparedGraph"]] = field(
        default=None, compare=False
    )
    pair: Optional[Tuple[Graph, Graph]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind == "files":
            if not self.g1 or not self.g2:
                raise InputMismatchError("files source needs both g1 and g2")
        elif self.kind == "registry":
            if not self.dataset:
                raise InputMismatchError("registry source needs a dataset name")
        elif self.kind == "events":
            if not self.events:
                raise InputMismatchError("events source needs an events path")
        elif self.kind == "inline":
            if (self.graph is None) == (self.pair is None):
                raise InputMismatchError(
                    "inline source needs exactly one of graph= or pair="
                )
        else:
            raise InputMismatchError(f"unknown source kind {self.kind!r}")

    @classmethod
    def from_files(cls, g1: str, g2: str) -> "GraphSource":
        return cls(kind="files", g1=str(g1), g2=str(g2))

    @classmethod
    def from_registry(cls, dataset: str, scale: float = 1.0) -> "GraphSource":
        return cls(kind="registry", dataset=dataset, scale=scale)

    @classmethod
    def from_events(cls, events: str) -> "GraphSource":
        return cls(kind="events", events=str(events))

    @classmethod
    def from_graph(
        cls, graph: Union[Graph, "PreparedGraph"]
    ) -> "GraphSource":
        return cls(kind="inline", graph=graph)

    @classmethod
    def from_pair(cls, g1: Graph, g2: Graph) -> "GraphSource":
        return cls(kind="inline", pair=(g1, g2))

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "files":
            return {"g1": self.g1, "g2": self.g2}
        if self.kind == "registry":
            out: Dict[str, Any] = {"dataset": self.dataset}
            if self.scale != 1.0:
                out["scale"] = self.scale
            return out
        if self.kind == "events":
            return {"events": self.events}
        raise InputMismatchError(
            "inline sources are in-memory only and cannot be serialised"
        )


@dataclass(frozen=True)
class BatchQuery:
    """One typed DCS query of a batch.

    Difference parameters (*alpha*, *flip*, *discrete*, *cap*) shape the
    preprocessing; solver parameters (*backend*, *k*, *strategy*,
    *tol_scale*) shape the solve; the ``stream`` fields configure the
    replay engine.  *timeout* (seconds) bounds this query's solve in the
    executor; ``None`` inherits the executor default.
    """

    kind: str
    source: GraphSource
    qid: str = ""
    # difference transform
    alpha: float = 1.0
    flip: bool = False
    discrete: bool = False
    cap: Optional[float] = None
    # solver
    backend: str = "python"
    k: int = 1
    strategy: str = "vertices"
    tol_scale: float = 1e-2
    timeout: Optional[float] = None
    # stream replay
    window: int = 5
    measure: str = "average_degree"
    policy: str = "exact"
    warmup: Optional[int] = None
    threshold: float = 0.0
    steps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InputMismatchError(
                f"unknown query kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.backend not in BACKENDS:
            from repro.engine.registry import backend_names

            if self.backend not in backend_names():
                raise InputMismatchError(
                    f"unknown backend {self.backend!r}; expected one of "
                    f"{tuple(backend_names())}"
                )
        if self.k <= 0:
            raise InputMismatchError("k must be positive")
        if self.kind == "stream":
            if self.source.kind != "events":
                raise InputMismatchError(
                    "stream queries need an events source"
                )
            if (self.alpha, self.flip, self.discrete, self.cap) != (
                1.0, False, False, None,
            ):
                # The replay engine maintains its own difference graph;
                # accepting these would silently ignore them (and
                # cache-collide with the untransformed query).
                raise InputMismatchError(
                    "stream queries replay an event log; "
                    "alpha/flip/discrete/cap do not apply"
                )
            if self.measure not in ("average_degree", "affinity"):
                raise InputMismatchError(
                    f"unknown measure {self.measure!r}"
                )
            if self.policy not in ("exact", "gated"):
                raise InputMismatchError(f"unknown policy {self.policy!r}")
        else:
            if self.source.kind == "events":
                raise InputMismatchError(
                    f"{self.kind} queries cannot run on an events source"
                )
        if self.kind == "dcsad" and self.strategy not in ("vertices", "edges"):
            raise InputMismatchError(
                f"unknown removal strategy {self.strategy!r}"
            )

    def with_qid(self, qid: str) -> "BatchQuery":
        return replace(self, qid=qid)

    def solve_params(self) -> Dict[str, Any]:
        """The solver-facing parameters, canonically keyed.

        Together with the input fingerprint this is the identity of the
        *answer* — the content-addressed cache key material.  Source
        naming (paths, dataset names) is deliberately excluded: two
        routes to the same graph share cached results.
        """
        if self.kind == "stream":
            return {
                "kind": "stream",
                "window": self.window,
                "measure": self.measure,
                "policy": self.policy,
                "warmup": self.warmup,
                "threshold": self.threshold,
                "steps": self.steps,
                "backend": self.backend,
                "tol_scale": self.tol_scale,
            }
        params: Dict[str, Any] = {
            "kind": self.kind,
            "backend": self.backend,
            "k": self.k,
            "tol_scale": self.tol_scale,
        }
        if self.kind == "dcsad":
            params["strategy"] = self.strategy
        return params


#: Fields carried verbatim in query records (everything except the
#: structurally-handled kind/source/qid), with defaults taken from the
#: dataclass itself so serialisation can never drift from the schema.
_PARAM_DEFAULTS: Dict[str, Any] = {
    f.name: f.default
    for f in dataclasses.fields(BatchQuery)
    if f.name not in ("kind", "source", "qid")
}


def query_to_dict(query: BatchQuery) -> Dict[str, Any]:
    """Serialise a query as a plain JSON-ready dict (defaults omitted)."""
    out: Dict[str, Any] = {"kind": query.kind}
    if query.qid:
        out["qid"] = query.qid
    out.update(query.source.to_dict())
    for name, default in _PARAM_DEFAULTS.items():
        value = getattr(query, name)
        if value != default:
            out[name] = value
    return out


def query_from_dict(
    record: Dict[str, Any],
    qid: str = "",
    graph_resolver: Optional[
        Callable[[str], Union[Graph, "PreparedGraph"]]
    ] = None,
) -> BatchQuery:
    """Parse one query object (inverse of :func:`query_to_dict`).

    *graph_resolver* extends the source vocabulary with ``{"graph":
    name}`` records: the callable maps a name to an already-assembled
    difference graph (the query service resolves through its warm
    registry).  Without a resolver, ``graph`` references are rejected —
    file-based submissions have no registry to resolve against.
    """
    if not isinstance(record, dict):
        raise InputMismatchError(f"query record must be an object: {record!r}")
    data = dict(record)
    kind = data.pop("kind", None)
    if kind == "stream_replay":
        kind = "stream"
    if kind is None:
        raise InputMismatchError(f"query record has no 'kind': {record!r}")
    qid = str(data.pop("qid", qid))
    if "graph" in data:
        if graph_resolver is None:
            raise InputMismatchError(
                "'graph' references need a resolver (they are served by "
                f"the query service's registry): {record!r}"
            )
        source = GraphSource.from_graph(graph_resolver(str(data.pop("graph"))))
    elif "events" in data:
        source = GraphSource.from_events(data.pop("events"))
    elif "dataset" in data:
        source = GraphSource.from_registry(
            data.pop("dataset"), scale=float(data.pop("scale", 1.0))
        )
    elif "g1" in data or "g2" in data:
        g1, g2 = data.pop("g1", None), data.pop("g2", None)
        if not g1 or not g2:
            raise InputMismatchError(
                f"files input needs both g1 and g2: {record!r}"
            )
        source = GraphSource.from_files(g1, g2)
    else:
        raise InputMismatchError(
            "query record names no input "
            f"(g1/g2, dataset, events or graph): {record!r}"
        )
    unknown = set(data) - set(_PARAM_DEFAULTS)
    if unknown:
        raise InputMismatchError(
            f"unknown query fields {sorted(unknown)} in {record!r}"
        )
    for name in ("k", "window", "warmup", "steps"):
        # JSON generators often emit 3.0 for 3; accept integral floats
        # here so the mistake surfaces as a parse error, not an opaque
        # solver failure later.
        value = data.get(name)
        if isinstance(value, float):
            if not value.is_integer():
                raise InputMismatchError(
                    f"{name} must be an integer, got {value!r}"
                )
            data[name] = int(value)
        elif value is not None and not isinstance(value, int):
            raise InputMismatchError(
                f"{name} must be an integer, got {value!r}"
            )
    return BatchQuery(kind=kind, source=source, qid=qid, **data)


def read_queries(source: Union[str, IO[str]]) -> List[BatchQuery]:
    """Read a query file: a JSON array, or JSONL (one object per line).

    Queries without an explicit ``qid`` are labelled ``q0, q1, ...`` by
    position; explicit qids must be unique.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            text = stream.read()
    else:
        text = source.read()
    stripped = text.lstrip()
    records: List[Dict[str, Any]]
    if not stripped:
        records = []
    elif stripped.startswith("["):
        loaded = json.loads(text)
        if not isinstance(loaded, list):
            raise InputMismatchError("top-level JSON must be an array")
        records = loaded
    else:
        records = [
            json.loads(line)
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
    return assign_qids(query_from_dict(record) for record in records)


def assign_qids(queries: Iterable[BatchQuery]) -> List[BatchQuery]:
    """Give every query a unique qid (shared by file and library paths).

    Explicit qids must be unique; blank ones are filled positionally as
    ``q0, q1, ...``, skipping any name an explicit qid already took.
    """
    items = list(queries)
    taken: Dict[str, int] = {}
    for i, query in enumerate(items):
        if not query.qid:
            continue
        if query.qid in taken:
            raise InputMismatchError(
                f"duplicate qid {query.qid!r} "
                f"(queries {taken[query.qid]} and {i})"
            )
        taken[query.qid] = i
    auto = 0
    for i, query in enumerate(items):
        if query.qid:
            continue
        while f"q{auto}" in taken:
            auto += 1
        items[i] = query.with_qid(f"q{auto}")
        taken[f"q{auto}"] = i
    return items
