"""Content-addressed result cache for batch queries.

A cached answer is keyed by **what was computed on what**, never by how
the input was named: the key digests the input's content fingerprint
(:func:`repro.graph.sparse.graph_fingerprint` for graphs, an event-list
digest for streams) together with the query's canonical solver
parameters.  Consequences:

* resubmitting a query is free, whatever path or dataset alias it used;
* an input file changing on disk changes the fingerprint, so stale
  answers can never be served;
* cache entries are plain JSON payloads — exactly the bytes the
  executor would have produced — so a hit is byte-identical to a solve.

The cache is an in-memory dict, optionally spilled to a directory
(one ``<key>.json`` per entry) so it survives across processes and CLI
invocations.  Writes go to a temp file then ``os.replace`` — concurrent
writers at worst do redundant work, never corrupt an entry.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import threading
from typing import Any, Dict, Optional, Union

PathLike = Union[str, os.PathLike]


def canonical_params(value: Any) -> Any:
    """Numerically canonical copy of a parameter structure.

    JSON has one number line, Python has two: ``alpha=1`` and
    ``alpha=1.0`` describe the same computation but serialise to
    different bytes, so hashing raw ``json.dumps`` output would give
    them different cache keys (spurious misses).  Int-valued floats are
    therefore normalised to ints before hashing.  Non-finite floats are
    rejected outright — ``NaN`` never compares equal to itself, so a key
    digesting one could never be *meant*; it is an input error.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(
                f"non-finite parameter value {value!r} cannot be cached"
            )
        if value.is_integer():
            return int(value)
        return value
    if isinstance(value, dict):
        return {key: canonical_params(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_params(item) for item in value]
    return value


def canonical_text(payload: Any) -> str:
    """The one byte form of a JSON payload: sorted keys, no whitespace.

    Everything content-addressed — key material and stored entries —
    goes through this, so equality of answers is equality of bytes.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(fingerprint: str, params: Dict[str, Any]) -> str:
    """The content address of one answer: sha256 over input + params.

    Parameters are canonicalised first (:func:`canonical_params`), so
    numerically equal queries share an entry however they spelled their
    numbers.
    """
    material = canonical_text(
        {"fingerprint": fingerprint, "params": canonical_params(params)}
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Memoised query results, content-addressed.

    ``directory=None`` keeps the cache purely in-memory (one executor's
    lifetime); a directory makes it persistent.  ``hits`` / ``misses`` /
    ``stores`` expose effectiveness to benchmarks and the CLI summary.

    Thread-safe: the query service shares one instance between its
    event loop and its worker threads, so lookups, stores and the
    counters mutate under a lock (counter read-modify-writes are not
    atomic on their own).
    """

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        #: key -> canonical JSON text.  Entries are stored *serialised*
        #: so a caller mutating a returned payload (or the dict it was
        #: stored from) can never poison later hits — every get() hands
        #: out a fresh structure.
        self._memory: Dict[str, str] = {}
        self._lock = threading.Lock()
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        with self._lock:
            keys = set(self._memory)
        if self.directory is None:
            return len(keys)
        on_disk = {p.stem for p in self.directory.glob("*.json")}
        return len(on_disk | keys)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for *key*, or None (counts hit/miss)."""
        with self._lock:
            text = self._memory.get(key)
        if text is None and self.directory is not None:
            path = self.directory / f"{key}.json"
            if path.exists():
                try:
                    text = path.read_text(encoding="utf-8")
                    json.loads(text)  # reject corrupt entries
                except (OSError, json.JSONDecodeError):
                    text = None
                else:
                    with self._lock:
                        self._memory[key] = text
        with self._lock:
            if text is None:
                self.misses += 1
                return None
            self.hits += 1
        payload: Dict[str, Any] = json.loads(text)
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store *payload* under *key* (memory, then disk if configured).

        Entries are serialised with :func:`canonical_text` — the same
        compact byte form the executor's canonical JSON uses — so a
        disk round-trip is byte-identical to a fresh solve, which is
        the cache's documented contract.
        """
        text = canonical_text(payload)
        with self._lock:
            self._memory[key] = text
            self.stores += 1
        if self.directory is None:
            return
        path = self.directory / f"{key}.json"
        tmp = self.directory / f".{key}.tmp.{os.getpid()}-{threading.get_ident()}"
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        with self._lock:
            self._memory.clear()
        if self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
