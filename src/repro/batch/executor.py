"""The batch scheduler: shared-prep fan-out with isolation and caching.

Execution of one submission::

    queries ──► BatchPlan ──► preps built once (parent process)
                                   │
            cache lookup ◄─────────┤ fingerprints
                 │ misses          ▼
                 └─────► worker pool (or serial fallback)
                          · per-process table fingerprint -> payload,
                            shipped once at pool start
                          · GD+ / CSRAdjacency built per fingerprint,
                            shared across that worker's queries
                          · per-query timeout + failure isolation
                                   │
                                   ▼
                     BatchResult records (input order) ──► cache fill

Design decisions worth knowing:

* **Workers are processes**, not threads — the solvers are pure-Python
  hot loops, so threads would serialise on the GIL.  The pool is
  created per :meth:`BatchExecutor.run` with the deduplicated prep
  table as init args: each worker unpickles every shared graph exactly
  once, then serves any number of queries from it (queries themselves
  travel as tiny parameter records).
* **Serial fallback**: ``mode="auto"`` uses a pool only when it can
  actually help (more than one worker requested *and* more than one CPU
  present) and quietly falls back to in-process execution otherwise —
  same code path, same results, no pickling.  A pool whose workers die
  (:class:`~concurrent.futures.process.BrokenProcessPool`) also falls
  back, re-running the unfinished queries serially.
* **Failure isolation**: one query raising — bad parameters, a solver
  error — yields a ``status="error"`` record; every other query still
  completes.  Timeouts are enforced *where the query runs* via
  ``SIGALRM`` (each worker process owns its main thread), so a
  too-slow solve is actually interrupted, the worker stays healthy, and
  the record comes back ``status="timeout"``.  Failures — errors and
  timeouts alike — are never cached, because they can be transient;
  only real answers are memoised, and resubmission retries the rest.
* **Determinism**: a query's payload is produced by one pure function
  (:func:`execute_payload`) in every mode, so serial, pooled and cached
  runs are byte-identical (:meth:`BatchResult.canonical_json`) — the
  property the benchmark gate asserts.
"""

from __future__ import annotations

import json
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from types import FrameType
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.batch.cache import ResultCache, cache_key, canonical_text
from repro.batch.plan import BatchPlan
from repro.batch.queries import BatchQuery, assign_qids
from repro.engine.envelope import SolveRequest, solve
from repro.engine.prepared import PreparedGraph
from repro.graph.graph import Graph
from repro.stream.events import EventLog

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "execute_payload",
    "run_guarded",
]


# ----------------------------------------------------------------------
# result records
# ----------------------------------------------------------------------
@dataclass
class BatchResult:
    """Outcome of one query: an answer, an error, or a timeout."""

    qid: str
    kind: str
    status: str  # "ok" | "error" | "timeout"
    fingerprint: str
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cached: bool = False
    seconds: float = 0.0
    #: phase -> self-time seconds, recorded where the solve ran (worker
    #: process or serial host); None for cached / failed / stream rows.
    profile: Optional[Dict[str, float]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical_json(self) -> str:
        """The *answer identity*: everything except provenance/timing.

        Two runs of the same query must produce equal canonical JSON
        whatever mode, worker count or cache state served them.  The
        byte form is :func:`~repro.batch.cache.canonical_text` — the
        same one the result cache persists — so cached bytes and fresh
        bytes can be compared directly.
        """
        return canonical_text(
            {
                "qid": self.qid,
                "kind": self.kind,
                "status": self.status,
                "fingerprint": self.fingerprint,
                "payload": self.payload,
                "error": self.error,
            }
        )

    def to_json(self) -> str:
        """Full one-line record (the ``repro batch`` JSONL output).

        ``profile`` rides here — the out-of-band form — and never in
        :meth:`canonical_json`: the phase breakdown is provenance of
        *one execution*, not part of the answer's identity.
        """
        return json.dumps(
            {
                "qid": self.qid,
                "kind": self.kind,
                "status": self.status,
                "fingerprint": self.fingerprint,
                "payload": self.payload,
                "error": self.error,
                "cached": self.cached,
                "seconds": self.seconds,
                "profile": self.profile,
            },
            sort_keys=True,
        )


@dataclass
class BatchStats:
    """What one :meth:`BatchExecutor.run` actually did."""

    queries: int = 0
    mode: str = "serial"
    workers: int = 1
    preps_built: int = 0
    preps_shared: int = 0
    prep_seconds: float = 0.0
    cache_hits: int = 0
    solved: int = 0
    errors: int = 0
    timeouts: int = 0
    solve_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: the plan-level profile: per-phase self-time seconds merged over
    #: every freshly solved graph query in the run
    phase_seconds: Dict[str, float] = dataclass_field(default_factory=dict)

    def summary(self) -> str:
        text = (
            f"queries={self.queries} mode={self.mode} workers={self.workers} "
            f"preps={self.preps_built} (+{self.preps_shared} shared) "
            f"cache_hits={self.cache_hits} solved={self.solved} "
            f"errors={self.errors} timeouts={self.timeouts} "
            f"prep={self.prep_seconds:.3f}s solve={self.solve_seconds:.3f}s "
            f"wall={self.wall_seconds:.3f}s"
        )
        if self.phase_seconds:
            phases = " ".join(
                f"{phase}={seconds:.3f}s"
                for phase, seconds in sorted(self.phase_seconds.items())
            )
            text += f" phases[{phases}]"
        return text


# ----------------------------------------------------------------------
# the pure solve: (query params, shared payload) -> JSON payload
# ----------------------------------------------------------------------
@dataclass
class _QuerySpec:
    """The picklable per-query work order shipped to workers."""

    qid: str
    kind: str
    fingerprint: str
    params: Dict[str, Any]


def _subset_json(subset: Iterable[object]) -> List[str]:
    return sorted(str(v) for v in subset)


def execute_payload(
    kind: str,
    params: Dict[str, Any],
    payload: Union[Graph, EventLog, PreparedGraph],
    prepared: Optional[PreparedGraph] = None,
) -> Dict[str, Any]:
    """Run one query on its prepared input; return the JSON-ready answer.

    This is the *only* place query semantics live — the serial path, the
    worker processes and the benchmarks all call it, which is what makes
    their results byte-identical.  Graph queries go through the engine's
    shared :class:`~repro.engine.envelope.SolveRequest` /
    :class:`~repro.engine.envelope.SolveResult` envelope; *prepared*
    optionally supplies the graph's shared
    :class:`~repro.engine.prepared.PreparedGraph` (positive part + CSR
    adjacencies, built once per fingerprint per process).
    """
    if kind in ("dcsad", "dcsga"):
        if prepared is None:
            if isinstance(payload, PreparedGraph):
                # The payload arrived already prepared (e.g. the
                # service's warm registry, possibly attached to a
                # shared-memory segment) — ride it as-is.
                prepared = payload
            else:
                assert isinstance(payload, Graph)
                prepared = PreparedGraph(payload)
        return solve(SolveRequest.from_params(kind, params), prepared).payload()
    if kind == "stream":
        from repro.stream.engine import replay_events

        assert isinstance(payload, EventLog)
        alerts, stats = replay_events(
            payload,
            n_steps=params["steps"],
            window=params["window"],
            measure=params["measure"],
            warmup=params["warmup"],
            backend=params["backend"],
            policy=params["policy"],
            min_score=params["threshold"],
            tol_scale=params["tol_scale"],
        )
        return {
            "kind": "stream",
            "measure": params["measure"],
            "params": dict(params),
            "alerts": [
                {
                    "step": alert.step,
                    "score": alert.score,
                    "subset": _subset_json(alert.subset),
                    "measure": alert.measure,
                    "source": alert.source,
                }
                for alert in alerts
            ],
            "stats": {
                "steps": stats.steps,
                "events": stats.events,
                "full_solves": stats.full_solves,
                "cache_hits": stats.cache_hits,
                "incumbent_holds": stats.incumbent_holds,
                "local_probes": stats.local_probes,
            },
        }
    raise ValueError(f"unknown query kind {kind!r}")


# ----------------------------------------------------------------------
# worker-side shared state
# ----------------------------------------------------------------------
#: fingerprint -> prepared payload (Graph, EventLog or an
#: already-built PreparedGraph stub riding a shared-memory segment),
#: set at pool init.
_SHARED_PAYLOADS: Dict[str, Union[Graph, EventLog, PreparedGraph]] = {}
#: fingerprint -> PreparedGraph (GD+ / CSR context), built lazily per
#: process — one preparation serves every query on the fingerprint,
#: DCSAD and DCSGA alike.
_SHARED_PREPARED: Dict[str, PreparedGraph] = {}


def _worker_init(
    payloads: Dict[str, Union[Graph, EventLog, PreparedGraph]],
    warm: Tuple[str, ...] = (),
) -> None:
    """Pool initializer: receive the shared prep table once per worker.

    *warm* names the backends this run's queries will use; each
    available one is warmed **here** — once per worker process — so a
    JIT-compiling backend (``native``) pays its compilation at pool
    start instead of silently re-paying it inside the first query's
    (timed, timeout-budgeted) solve.  Unknown or unavailable names are
    ignored: warming is an optimisation, and the query itself will
    raise the precise error if the backend truly cannot run.
    """
    _SHARED_PAYLOADS.clear()
    _SHARED_PAYLOADS.update(payloads)
    _SHARED_PREPARED.clear()
    from repro.engine.registry import get_backend
    from repro.exceptions import UnknownBackendError

    for name in warm:
        try:
            backend = get_backend(name, require=False)
        except UnknownBackendError:
            continue
        if backend.available():
            backend.warm()


def _shared_prepared(
    fingerprint: str, graph: Union[Graph, PreparedGraph]
) -> PreparedGraph:
    """The :class:`PreparedGraph` of a fingerprint, created once.

    The positive-part walk and the CSR freezes are the per-graph fixed
    costs of graph queries; the prepared context builds each lazily on
    first need and shares them across every query this process serves
    on the fingerprint — the "prepare exactly once" contract.  A
    payload that is *already* a :class:`PreparedGraph` (the service's
    warm registry object, or its shared-memory stub unpickled at pool
    init) is adopted directly — nothing is rebuilt.
    """
    prepared = _SHARED_PREPARED.get(fingerprint)
    if prepared is None:
        if isinstance(graph, PreparedGraph):
            prepared = graph
        else:
            prepared = PreparedGraph(graph, fingerprint=fingerprint)
        _SHARED_PREPARED[fingerprint] = prepared
    return prepared


class _QueryTimeout(Exception):
    """Raised (via SIGALRM) inside the executing process on timeout."""


def run_guarded(
    work: Any, timeout: Optional[float] = None
) -> Tuple[str, Any, float]:
    """Run ``work()`` under timeout enforcement and failure isolation.

    This is the executor's per-query guard, factored out so other
    delivery layers (the long-running query service) enforce the same
    budget semantics on the same code path.  When the calling thread is
    the process's main thread, *timeout* is enforced with a real
    ``SIGALRM`` interrupt; elsewhere — a non-main thread, a platform
    without ``SIGALRM`` — it degrades to advisory (the work runs to
    completion) and the caller is expected to bound the *wait* itself.

    Returns ``(status, value, seconds)`` with *seconds* measured where
    the work actually ran: ``("ok", result, s)``,
    ``("error", message, s)`` or ``("timeout", message, s)``.  Nothing
    work-level is raised — returning the failure keeps it picklable
    and the worker healthy; only infrastructure failures propagate.
    """
    start = time.perf_counter()
    use_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
    )
    if use_alarm:
        def _on_alarm(signum: int, frame: Optional[FrameType]) -> None:
            raise _QueryTimeout()

        try:
            previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
        except ValueError:
            # Not the main thread: timeouts degrade to advisory.
            use_alarm = False
        else:
            try:
                previous_timer = signal.setitimer(signal.ITIMER_REAL, timeout)
            except ValueError:
                # signal() succeeded but the timer could not be armed
                # (non-main-thread race).  Degrade to advisory — but
                # first put the host's handler back: leaving our
                # _on_alarm installed would leak a handler whose
                # _QueryTimeout escapes into unrelated host code the
                # next time anything arms SIGALRM.
                signal.signal(signal.SIGALRM, previous_handler)
                use_alarm = False
    try:
        try:
            answer = work()
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous_handler)
                old_delay, old_interval = previous_timer
                if old_delay or old_interval:
                    # Serial mode runs in the host process: re-arm any
                    # watchdog it had, net of the time we consumed (an
                    # already-expired one fires as soon as possible).
                    remaining = max(
                        1e-6, old_delay - (time.perf_counter() - start)
                    )
                    signal.setitimer(
                        signal.ITIMER_REAL, remaining, old_interval
                    )
    except _QueryTimeout:
        return (
            "timeout",
            f"query exceeded its {timeout}s timeout",
            time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 - the isolation boundary
        return (
            "error",
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - start,
        )
    return "ok", answer, time.perf_counter() - start


def _run_spec(
    spec: _QuerySpec, timeout: Optional[float] = None
) -> Tuple[str, Any, float, Optional[Dict[str, float]]]:
    """Execute one work order against the shared tables.

    Runs in a worker process (pooled mode) or in the submitting process
    (serial mode) — either way the executing process's main thread, so
    :func:`run_guarded` enforces *timeout* with a real ``SIGALRM``
    interrupt where the platform allows.  The shared-table lookups (and
    the lazy per-fingerprint preparation) happen inside the guarded
    work, so preparation time counts against the query's budget.

    Graph queries run under a recording tracer *in the executing
    process*; the span tree never crosses the pool boundary — only the
    derived phase dict does, returned as the fourth element (``None``
    on failure and for stream replays, whose per-step solves stay on
    the no-op hot path by design).
    """
    payload = _SHARED_PAYLOADS[spec.fingerprint]

    def work() -> Dict[str, Any]:
        prepared = None
        if isinstance(payload, (Graph, PreparedGraph)):
            prepared = _shared_prepared(spec.fingerprint, payload)
        return execute_payload(
            spec.kind, spec.params, payload, prepared=prepared
        )

    if spec.kind in ("dcsad", "dcsga"):
        from repro.obs.trace import recording

        def traced_work() -> Tuple[Dict[str, Any], Dict[str, float]]:
            with recording() as tracer:
                answer = work()
            return answer, tracer.phase_totals()

        status, value, seconds = run_guarded(traced_work, timeout)
        if status == "ok":
            answer, profile = value
            return status, answer, seconds, profile
        return status, value, seconds, None

    status, value, seconds = run_guarded(work, timeout)
    return status, value, seconds, None


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class BatchExecutor:
    """Run batches of typed DCS queries with shared prep and caching.

    Parameters
    ----------
    workers:
        Worker processes to fan solves across (``1`` = in-process).
    mode:
        ``"auto"`` (pool only when it can help), ``"process"`` (force a
        pool), or ``"serial"`` (force in-process).
    cache:
        A :class:`~repro.batch.cache.ResultCache`; defaults to a fresh
        in-memory cache owned by this executor.
    timeout:
        Default per-query solve timeout in seconds (a query's own
        ``timeout`` field overrides it).  ``None`` = unbounded.
    """

    def __init__(
        self,
        workers: int = 1,
        mode: str = "auto",
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if mode not in ("auto", "process", "serial"):
            raise ValueError(f"unknown mode {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.mode = mode
        self.cache = cache if cache is not None else ResultCache()
        self.timeout = timeout
        self.stats = BatchStats()

    def _effective_mode(self, pending: int) -> str:
        if self.mode == "process":
            # Explicitly forced: honour it even for one worker or one
            # query (callers use this to validate the pooled path).
            return "process"
        if self.mode == "serial" or self.workers == 1 or pending <= 1:
            return "serial"
        # auto: a pool of pure-Python solvers only helps with real CPUs;
        # on a single core it would just add pickling and fork latency.
        return "process" if (os.cpu_count() or 1) > 1 else "serial"

    def run(self, queries: Sequence[BatchQuery]) -> List[BatchResult]:
        """Execute *queries*; return one result per query, input order."""
        wall_start = time.perf_counter()
        queries = assign_qids(queries)
        plan = BatchPlan(queries)
        preps = plan.run_preps()
        payload_table: Dict[str, Union[Graph, EventLog, PreparedGraph]] = {
            prep.fingerprint: prep.payload
            for prep in preps.values()
            if prep.payload is not None
        }
        self.stats = BatchStats(
            queries=len(queries),
            workers=self.workers,
            preps_built=len(preps),
            preps_shared=plan.shared_preps,
            prep_seconds=sum(p.seconds for p in preps.values()),
        )

        results: List[Optional[BatchResult]] = [None] * len(queries)
        keys: List[str] = [""] * len(queries)
        pending: List[Tuple[int, _QuerySpec, Optional[float]]] = []
        first_of_key: Dict[Tuple[str, Optional[float]], int] = {}
        duplicates: List[Tuple[int, int]] = []  # (position, primary)
        for position, query in enumerate(queries):
            prep = preps[plan.prep_of[position]]
            if prep.error is not None:
                # Prep-level failure isolation: only the dependants fail.
                results[position] = BatchResult(
                    qid=query.qid,
                    kind=query.kind,
                    status="error",
                    fingerprint="",
                    error=f"prep failed: {prep.error}",
                    seconds=prep.seconds,
                )
                continue
            params = query.solve_params()
            try:
                keys[position] = cache_key(prep.fingerprint, params)
            except ValueError as exc:
                # Unhashable parameters (non-finite floats) fail only
                # the offending query — the executor's per-query
                # isolation contract — never the whole submission.
                results[position] = BatchResult(
                    qid=query.qid,
                    kind=query.kind,
                    status="error",
                    fingerprint=prep.fingerprint,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            hit = self.cache.get(keys[position])
            if hit is not None:
                self.stats.cache_hits += 1
                results[position] = BatchResult(
                    qid=query.qid,
                    kind=query.kind,
                    status=hit["status"],
                    fingerprint=prep.fingerprint,
                    payload=hit["payload"],
                    error=hit.get("error"),
                    cached=True,
                )
                continue
            timeout = (
                query.timeout if query.timeout is not None else self.timeout
            )
            # Same input, same parameters, same *budget*, same
            # submission: solve once and fan the answer out
            # (memoisation within a run, not just across runs).  The
            # budget is part of the dedup identity so a query with a
            # looser timeout never inherits a tighter twin's failure.
            dedup_key = (keys[position], timeout)
            primary = first_of_key.get(dedup_key)
            if primary is not None:
                duplicates.append((position, primary))
                continue
            first_of_key[dedup_key] = position
            spec = _QuerySpec(
                qid=query.qid,
                kind=query.kind,
                fingerprint=prep.fingerprint,
                params=params,
            )
            pending.append((position, spec, timeout))

        mode = self._effective_mode(len(pending))
        self.stats.mode = mode
        # Backends this run will solve with, for per-process warm-up at
        # worker start (JIT compilation must happen once per process,
        # never inside a timed query).
        warm = tuple(
            sorted(
                {
                    str(spec.params["backend"])
                    for _, spec, _ in pending
                    if spec.params.get("backend")
                }
            )
        )
        if pending:
            if mode == "process":
                try:
                    self._run_pooled(payload_table, pending, results, warm)
                except BrokenProcessPool:
                    # A worker died (OOM, hard crash).  Finish the batch
                    # in-process rather than failing the submission.
                    self.stats.mode = "process+serial-fallback"
                    self._run_serial(
                        payload_table,
                        [p for p in pending if results[p[0]] is None],
                        results,
                        warm,
                    )
            else:
                self._run_serial(payload_table, pending, results, warm)

        for position, primary in duplicates:
            source = results[primary]
            assert source is not None
            query = queries[position]
            if source.status == "ok":
                self.stats.cache_hits += 1
            results[position] = BatchResult(
                qid=query.qid,
                kind=query.kind,
                status=source.status,
                fingerprint=source.fingerprint,
                payload=source.payload,
                error=source.error,
                # Only a real answer counts as served-from-memo; a
                # replicated failure is not a cached result.
                cached=source.status == "ok",
            )

        for position, result in enumerate(results):
            assert result is not None, "every query must produce a record"
            if result.status == "error":
                self.stats.errors += 1
            elif result.status == "timeout":
                self.stats.timeouts += 1
            if result.cached or not keys[position]:
                continue
            self.stats.solve_seconds += result.seconds
            if result.profile:
                for phase, seconds in result.profile.items():
                    self.stats.phase_seconds[phase] = (
                        self.stats.phase_seconds.get(phase, 0.0) + seconds
                    )
            if result.status == "ok":
                self.stats.solved += 1
            if result.status == "ok" and keys[position]:
                # Only real answers are memoised.  Errors and timeouts
                # can be transient (a worker OOM, a missing optional
                # dependency, a tight budget) — caching them would serve
                # the failure forever; resubmission retries instead.
                self.cache.put(
                    keys[position],
                    {
                        "status": result.status,
                        "payload": result.payload,
                        "error": result.error,
                    },
                )
        self.stats.wall_seconds = time.perf_counter() - wall_start
        return results  # type: ignore[return-value]

    # -- execution paths ----------------------------------------------
    def _collect(
        self,
        position: int,
        spec: _QuerySpec,
        results: List[Optional[BatchResult]],
        waiter: Callable[
            [], Tuple[str, Any, float, Optional[Dict[str, float]]]
        ],
    ) -> None:
        wait_start = time.perf_counter()
        profile: Optional[Dict[str, float]] = None
        try:
            status, value, seconds, profile = waiter()
        except BrokenProcessPool:
            raise
        except Exception as exc:  # pool infrastructure / pickling failure
            status = "error"
            value = f"{type(exc).__name__}: {exc}"
            seconds = time.perf_counter() - wait_start
        results[position] = BatchResult(
            qid=spec.qid,
            kind=spec.kind,
            status=status,
            fingerprint=spec.fingerprint,
            payload=value if status == "ok" else None,
            error=None if status == "ok" else value,
            seconds=seconds,
            profile=profile,
        )

    def _run_serial(
        self,
        payload_table: Dict[str, Union[Graph, EventLog]],
        pending: Sequence[Tuple[int, _QuerySpec, Optional[float]]],
        results: List[Optional[BatchResult]],
        warm: Tuple[str, ...] = (),
    ) -> None:
        _worker_init(payload_table, warm)
        try:
            for position, spec, timeout in pending:
                self._collect(
                    position, spec, results,
                    lambda spec=spec, timeout=timeout: _run_spec(
                        spec, timeout
                    ),
                )
        finally:
            # Serial mode borrows the worker tables in *this* process;
            # release the graphs/CSR buffers once the run is over.
            _worker_init({})

    def _run_pooled(
        self,
        payload_table: Dict[str, Union[Graph, EventLog]],
        pending: Sequence[Tuple[int, _QuerySpec, Optional[float]]],
        results: List[Optional[BatchResult]],
        warm: Tuple[str, ...] = (),
    ) -> None:
        needed = {spec.fingerprint for _, spec, _ in pending}
        table = {
            fp: payload
            for fp, payload in payload_table.items()
            if fp in needed
        }
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)),
            initializer=_worker_init,
            initargs=(table, warm),
        ) as pool:
            futures = [
                (position, spec, pool.submit(_run_spec, spec, timeout))
                for position, spec, timeout in pending
            ]
            for position, spec, future in futures:
                self._collect(position, spec, results, future.result)
