"""The batch work DAG: deduplicated preprocessing feeding query fan-out.

A batch of queries is two-layered::

    source ──► prep node ──────────► query ... query      (per prep key)
               (load + difference      │
                construction, once)    ▼
                               fingerprint ──► cache key / worker table

Several queries typically share preprocessing — an alpha/k sweep over
one dataset, the same file pair mined under both measures.  The plan
groups queries by **prep key** (source identity + difference
parameters), so each distinct difference graph is loaded, assembled and
fingerprinted exactly once, however many queries consume it.  The
fingerprint then addresses everything downstream: the result cache and
the worker-side shared graph/CSR tables.

Prep execution happens in the *submitting* process (it is pure-Python
graph assembly — parallelising it across workers would just pickle the
raw inputs around); the solves are what the executor fans out.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.batch.queries import BatchQuery
from repro.core.difference import assemble_difference, cap_weights
from repro.engine.prepared import PreparedGraph
from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph
from repro.graph.io import read_pair
from repro.graph.sparse import graph_fingerprint
from repro.stream.events import EventLog, read_events

PrepKey = Tuple[Hashable, ...]


def prep_key(query: BatchQuery) -> PrepKey:
    """The dedup identity of a query's preprocessing.

    Two queries share a prep node iff they share this key: the same
    source *identity* (paths / dataset name / in-memory object) under
    the same difference transform.  Inline objects key by ``id()`` —
    within one submission, the same object means the same input.
    """
    source = query.source
    if source.kind == "events":
        return ("events", source.events)
    transform = (query.alpha, query.flip, query.discrete, query.cap)
    if source.kind == "files":
        return ("files", source.g1, source.g2) + transform
    if source.kind == "registry":
        return ("registry", source.dataset, source.scale) + transform
    if source.graph is not None:
        return ("inline-gd", id(source.graph)) + transform
    assert source.pair is not None
    # Key on the member graphs, not the pair tuple: every from_pair()
    # call builds a fresh tuple, but the same two graph objects name
    # the same input.
    return (
        "inline-pair", id(source.pair[0]), id(source.pair[1])
    ) + transform


def event_log_fingerprint(log: EventLog) -> str:
    """Content hash of an event log (the stream analogue of
    :func:`~repro.graph.sparse.graph_fingerprint`).

    Public because the query service addresses its replay cache with
    it — one vocabulary of content identity across batch and service.
    """
    digest = hashlib.sha256()
    for vertex in sorted(map(repr, log.declared)):
        digest.update(vertex.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    for event in log.events:
        digest.update(
            f"{event.t}\x00{event.u!r}\x00{event.v!r}\x00"
            f"{float(event.w).hex()}\x00".encode("utf-8")
        )
    return digest.hexdigest()


@dataclass
class PrepOutput:
    """One executed prep node: the shared input plus its identity.

    A failed prep (missing file, unknown dataset name, bad transform)
    carries *error* instead of a payload — the executor fails only the
    queries that depend on it, never the whole submission.
    """

    key: PrepKey
    payload: Optional[Union[Graph, EventLog, PreparedGraph]]
    fingerprint: str
    seconds: float
    qids: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def is_stream(self) -> bool:
        return isinstance(self.payload, EventLog)


class BatchPlan:
    """The two-layer DAG for one submission, ready to execute.

    ``prep_of`` maps each query (by position) to its prep key;
    ``groups`` lists the distinct prep nodes in first-use order.
    """

    def __init__(self, queries: Sequence[BatchQuery]) -> None:
        self.queries = list(queries)
        self.prep_of: List[PrepKey] = []
        self.groups: Dict[PrepKey, List[int]] = {}
        for position, query in enumerate(self.queries):
            key = prep_key(query)
            self.prep_of.append(key)
            self.groups.setdefault(key, []).append(position)

    @property
    def shared_preps(self) -> int:
        """How many per-query preps the dedup avoided."""
        return len(self.queries) - len(self.groups)

    def describe(self) -> str:
        """Human-readable DAG (the ``repro batch --plan`` output)."""
        lines = [
            f"batch plan: {len(self.queries)} queries, "
            f"{len(self.groups)} shared prep nodes "
            f"({self.shared_preps} prep builds deduplicated)"
        ]
        for index, (key, positions) in enumerate(self.groups.items()):
            qids = " ".join(
                self.queries[p].qid or f"#{p}" for p in positions
            )
            label = " ".join(str(part) for part in key)
            lines.append(f"  prep[{index}] {label}")
            lines.append(f"    -> {qids}")
        return "\n".join(lines)

    def run_preps(self) -> Dict[PrepKey, PrepOutput]:
        """Execute every prep node once; return outputs by key.

        File pairs are read once per distinct ``(g1, g2)`` even when
        several transforms (alpha sweeps) reuse them.
        """
        pair_cache: Dict[Tuple[str, str], Tuple[Graph, Graph]] = {}
        outputs: Dict[PrepKey, PrepOutput] = {}
        for key, positions in self.groups.items():
            query = self.queries[positions[0]]
            qids = [self.queries[p].qid for p in positions]
            start = time.perf_counter()
            try:
                payload = _build_payload(query, pair_cache)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                outputs[key] = PrepOutput(
                    key=key,
                    payload=None,
                    fingerprint="",
                    seconds=time.perf_counter() - start,
                    qids=qids,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            if isinstance(payload, EventLog):
                fingerprint = event_log_fingerprint(payload)
            elif isinstance(payload, PreparedGraph):
                # Already fingerprinted at preparation time (and the
                # graph may live in a shared-memory segment with no
                # dict form materialised) — never re-derive.
                fingerprint = payload.fingerprint
            else:
                fingerprint = graph_fingerprint(payload)
            outputs[key] = PrepOutput(
                key=key,
                payload=payload,
                fingerprint=fingerprint,
                seconds=time.perf_counter() - start,
                qids=qids,
            )
        return outputs


def _build_payload(
    query: BatchQuery,
    pair_cache: Dict[Tuple[str, str], Tuple[Graph, Graph]],
) -> Union[Graph, EventLog, PreparedGraph]:
    source = query.source
    if source.kind == "events":
        return read_events(source.events)
    if source.kind == "inline" and source.graph is not None:
        if (query.alpha, query.flip, query.discrete, query.cap) != (
            1.0, False, False, None,
        ):
            # Raised here (not at plan time) so it fails only the
            # queries that depend on this prep, never the submission.
            raise InputMismatchError(
                "an inline difference graph is already assembled; "
                "alpha/flip/discrete/cap would be applied twice"
            )
        return source.graph
    if source.kind == "inline":
        assert source.pair is not None
        g1, g2 = source.pair
    elif source.kind == "files":
        pair_id = (source.g1, source.g2)
        if pair_id not in pair_cache:
            pair_cache[pair_id] = read_pair(source.g1, source.g2)
        g1, g2 = pair_cache[pair_id]
    else:  # registry
        from repro.datasets.registry import build_named

        if query.discrete or query.alpha != 1.0:
            raise InputMismatchError(
                "registry entries are prebuilt difference graphs; "
                "alpha/discrete are fixed by the dataset name "
                f"({source.dataset!r})"
            )
        gd = build_named(source.dataset, scale=source.scale).graph
        if query.flip:
            gd = gd.negated()
        if query.cap is not None:
            gd = cap_weights(gd, query.cap)
        return gd
    return assemble_difference(
        g1,
        g2,
        alpha=query.alpha,
        flipped=query.flip,
        discrete=query.discrete,
        cap=query.cap,
    )
