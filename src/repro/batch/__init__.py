"""Batch-query service layer — many DCS queries, one shared machinery.

The paper's workloads are sweeps: Table VII times every dataset, the
use cases scan alphas and horizons, monitoring fans one stream into
many query shapes.  This package turns such sweeps from "a Python loop
around :func:`~repro.core.dcsad.dcs_greedy`" into a served batch::

    from repro.batch import BatchExecutor, BatchQuery, GraphSource

    queries = [
        BatchQuery(kind="dcsad", source=GraphSource.from_pair(g1, g2)),
        BatchQuery(kind="dcsga", source=GraphSource.from_pair(g1, g2),
                   backend="sparse", k=3),
    ]
    results = BatchExecutor(workers=4).run(queries)

Submission flow: :class:`~repro.batch.plan.BatchPlan` groups the
queries into a work DAG whose prep nodes (difference-graph assembly,
fingerprinting) are deduplicated by content;
:class:`~repro.batch.executor.BatchExecutor` resolves repeats from the
content-addressed :class:`~repro.batch.cache.ResultCache` and fans the
remaining solves across worker processes that share one frozen
graph/CSR table per fingerprint; every query comes back as a
:class:`~repro.batch.executor.BatchResult` — answer, error or timeout —
in input order.  ``repro batch`` is the CLI face of the same layer.
"""

from repro.batch.cache import (
    ResultCache,
    cache_key,
    canonical_params,
    canonical_text,
)
from repro.batch.executor import (
    BatchExecutor,
    BatchResult,
    BatchStats,
    execute_payload,
    run_guarded,
)
from repro.batch.plan import BatchPlan, PrepOutput, prep_key
from repro.batch.queries import (
    BatchQuery,
    GraphSource,
    query_from_dict,
    query_to_dict,
    read_queries,
)

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "BatchPlan",
    "BatchQuery",
    "GraphSource",
    "PrepOutput",
    "ResultCache",
    "cache_key",
    "canonical_params",
    "canonical_text",
    "execute_payload",
    "prep_key",
    "run_guarded",
    "query_from_dict",
    "query_to_dict",
    "read_queries",
]
