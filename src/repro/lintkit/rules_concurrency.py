"""Concurrency invariants: the event loop, locks, signals, shared memory.

Each rule encodes a failure this codebase has already shipped and fixed
once — the point is that no reviewer should have to remember them:

* :class:`AsyncBlockRule` (``REPRO-ASYNC-BLOCK``) — the PR-7 loop-lag
  gauge *observes* a stalled event loop at runtime; this catches the
  blocking call before it ships.
* :class:`LockHeldRule` (``REPRO-LOCK-HELD``) — PR 5 shipped (and then
  review-fixed) cold graph builds under the ``GraphRegistry`` lock.
* :class:`SignalRestoreRule` (``REPRO-SIGNAL-RESTORE``) — PR 5's
  ``SIGALRM`` handler-restore bug: ``run_guarded`` swapped the handler
  and an early degrade path leaked it.
* :class:`ShmLifecycleRule` (``REPRO-SHM-LIFECYCLE``) — PR 9's shm
  ready-flag race and segment-leak class: every mapping must be closed
  or handed to an owner that closes it.

All passes are syntactic and single-file.  They deliberately do not
chase calls across functions — the blocking/expensive *entry points*
are named instead, which keeps false positives near zero and makes a
finding actionable at the flagged line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lintkit.findings import Finding
from repro.lintkit.runner import (
    FileContext,
    Rule,
    dotted_name,
    register_rule,
    terminal_name,
)

__all__ = [
    "AsyncBlockRule",
    "LockHeldRule",
    "ShmLifecycleRule",
    "SignalRestoreRule",
]


def _iter_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Children of *node* staying inside the current function scope.

    Nested ``def``/``async def``/``lambda`` bodies are separate scopes:
    a closure handed to the worker pool runs *off* the loop, a nested
    helper gets its own pass when the visitor reaches it.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield child


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first walk of the current function scope (see above)."""
    for child in _iter_scope(node):
        yield child
        for grandchild in _walk_scope(child):
            yield grandchild


def _is_lockish(expr: ast.AST) -> bool:
    """Whether *expr* names a lock (``self._lock``, ``session.lock``...).

    The naming convention is the contract: every guarded-attribute in
    :data:`GUARDED_LOCK_ATTRS` ends in ``lock``, and the suffix match
    extends the rule to new lock attributes without a map edit.
    """
    name = terminal_name(expr)
    return name is not None and name.lower().endswith("lock")


# ----------------------------------------------------------------------
# REPRO-ASYNC-BLOCK
# ----------------------------------------------------------------------
#: Module-level callables that block the calling thread outright.
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
    }
)

#: Method names that block when invoked synchronously (``Lock.acquire``,
#: ``socket.recv`` ...).  Exempt inside an ``await`` expression — the
#: asyncio variants of these names are awaitables.
BLOCKING_METHODS = frozenset({"acquire", "recv", "accept", "sendall"})

#: ``Event.wait`` / ``Process.wait`` block; ``await x.wait()`` (or any
#: use inside an awaited expression, e.g. ``asyncio.wait_for(x.wait(),
#: t)``) is the legitimate asyncio spelling.
WAIT_METHODS = frozenset({"wait"})

#: Solver entry points: a whole prepare/solve on the event loop is the
#: pathology the service's pool bridge exists to prevent.
SOLVER_ENTRYPOINTS = frozenset(
    {
        "dcs_greedy",
        "new_sea",
        "top_k_dcsad",
        "top_k_dcsga",
        "replicator_dynamics",
        "execute_payload",
        "run_guarded",
        "snapshot_recompute",
    }
)


class AsyncBlockRule(Rule):
    rule_id = "REPRO-ASYNC-BLOCK"
    summary = (
        "no blocking calls (sleep, file/subprocess/socket I/O, "
        "Lock.acquire, Event.wait, solver entry points) directly in an "
        "async def body"
    )
    motivation = (
        "the PR-7 loop-lag gauge observes these stalls at runtime; "
        "service p95 dies when one lands on the event loop"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for finding in self._scan(ctx, node):
                    yield finding

    def _scan(
        self, ctx: FileContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node, in_await in _walk_await_aware(fn):
            if isinstance(node, ast.Call):
                message = self._blocking_call(node, in_await, fn.name)
                if message is not None:
                    yield ctx.finding(self.rule_id, node, message)
            elif isinstance(node, ast.With):
                for item in node.items:
                    if _is_lockish(item.context_expr):
                        label = dotted_name(item.context_expr) or "<lock>"
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"'with {label}:' inside 'async def "
                            f"{fn.name}' blocks the event loop while "
                            "the thread lock is contended; hold it in "
                            "pool-thread code instead",
                        )

    def _blocking_call(
        self, call: ast.Call, in_await: bool, fn_name: str
    ) -> Optional[str]:
        dotted = dotted_name(call.func)
        last = terminal_name(call.func)
        where = f"inside 'async def {fn_name}'"
        if dotted in BLOCKING_DOTTED:
            return (
                f"blocking call {dotted}() {where} stalls the event "
                "loop; move it to the worker pool (run_in_executor) or "
                "use the asyncio equivalent"
            )
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            return (
                f"file I/O open() {where} blocks the loop; read in a "
                "pool thread and hand back bytes"
            )
        if in_await or last is None:
            return None
        if isinstance(call.func, ast.Attribute):
            if last in BLOCKING_METHODS:
                return (
                    f".{last}() {where} is a blocking primitive when "
                    "called synchronously; await the asyncio variant or "
                    "move it off the loop"
                )
            if last in WAIT_METHODS:
                return (
                    f"synchronous .{last}() {where} blocks the loop "
                    "(threading.Event semantics); await it, or poll "
                    "with asyncio.sleep"
                )
        if last in SOLVER_ENTRYPOINTS:
            return (
                f"solver entry point {last}() {where} runs a whole "
                "solve on the event loop; submit it through the "
                "admission queue / worker pool"
            )
        return None


def _walk_await_aware(
    fn: ast.AsyncFunctionDef,
) -> Iterator[Tuple[ast.AST, bool]]:
    """Scope walk yielding ``(node, inside-an-await-subtree)``."""

    def walk(node: ast.AST, in_await: bool) -> Iterator[Tuple[ast.AST, bool]]:
        for child in _iter_scope(node):
            child_in_await = in_await or isinstance(child, ast.Await)
            yield child, child_in_await
            for pair in walk(child, child_in_await):
                yield pair

    return walk(fn, False)


# ----------------------------------------------------------------------
# REPRO-LOCK-HELD
# ----------------------------------------------------------------------
#: The classes whose locks guard hot shared state, and the attribute
#: each guards it with — the documented contract this rule enforces.
#: The generic ``*lock`` suffix match covers these and any newcomer
#: that follows the naming convention.
GUARDED_LOCK_ATTRS: Dict[str, Tuple[str, ...]] = {
    "GraphRegistry": ("_lock",),
    "ServiceMetrics": ("_lock",),
    "SessionManager": ("_lock",),
    "StreamSession": ("lock",),
    "SharedGraphStore": ("_lock",),
    "ResultCache": ("_lock",),
}

#: Expensive-build entry points that must never run under a lock:
#: graph prepare, dataset synthesis/parse, shared-memory export, JIT
#: warm-up.  (PR 5's review fix moved exactly these out from under the
#: GraphRegistry lock.)
EXPENSIVE_CALLS = frozenset(
    {
        "PreparedGraph",
        "build_named",
        "assemble_difference",
        "read_pair",
        "read_edge_list",
        "read_events",
        "export",
        "resolve",
        "warm",
    }
)


class LockHeldRule(Rule):
    rule_id = "REPRO-LOCK-HELD"
    summary = (
        "no await/yield and no expensive-build calls (prepare, dataset "
        "build, shm export) inside a 'with <lock>:' block"
    )
    motivation = (
        "PR 5 shipped cold graph builds under the GraphRegistry lock — "
        "every warm hit stalled behind one slow synthesis"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                if _is_lockish(item.context_expr):
                    label = dotted_name(item.context_expr) or "<lock>"
                    for finding in self._scan_body(ctx, node, label):
                        yield finding
                    break

    def _scan_body(
        self, ctx: FileContext, block: ast.With, label: str
    ) -> Iterator[Finding]:
        held = f"while holding {label}"
        for stmt in block.body:
            yield from self._scan_node(ctx, stmt, held)

    def _scan_node(
        self, ctx: FileContext, node: ast.AST, held: str
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Await):
            yield ctx.finding(
                self.rule_id,
                node,
                f"await {held} parks the coroutine with the thread "
                "lock still taken; release before suspending",
            )
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            yield ctx.finding(
                self.rule_id,
                node,
                f"yield {held} suspends the generator with the lock "
                "taken for an unbounded time; snapshot under the lock "
                "and yield outside",
            )
        elif isinstance(node, ast.Call):
            last = terminal_name(node.func)
            if last in EXPENSIVE_CALLS:
                name = dotted_name(node.func) or last
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"expensive build {name}() {held} serialises every "
                    "contender behind it; build outside and admit the "
                    "result under the lock",
                )
        for child in _iter_scope(node):
            yield from self._scan_node(ctx, child, held)


# ----------------------------------------------------------------------
# REPRO-SIGNAL-RESTORE
# ----------------------------------------------------------------------
class SignalRestoreRule(Rule):
    rule_id = "REPRO-SIGNAL-RESTORE"
    summary = (
        "every signal.signal / signal.setitimer swap must capture the "
        "previous state and restore it in a finally"
    )
    motivation = (
        "PR 5's run_guarded leaked its SIGALRM handler on a degrade "
        "path; the host's next timer then raised our private exception"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            for finding in self._scan_scope(ctx, scope):
                yield finding

    def _scan_scope(
        self, ctx: FileContext, scope: ast.AST
    ) -> Iterator[Finding]:
        #: (kind, node, captured, restoring)
        entries: List[Tuple[str, ast.Call, bool, bool]] = []

        def visit(node: ast.AST, in_restore: bool) -> None:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                kind = _signal_kind(node.value)
                if kind is not None:
                    entries.append((kind, node.value, True, in_restore))
            elif isinstance(node, ast.Call):
                kind = _signal_kind(node)
                if kind is not None:
                    entries.append((kind, node, False, in_restore))
            if isinstance(node, ast.Try):
                for part in (node.body, node.orelse):
                    for stmt in part:
                        visit(stmt, in_restore)
                for handler in node.handlers:
                    for stmt in handler.body:
                        visit(stmt, True)
                for stmt in node.finalbody:
                    visit(stmt, True)
                return
            for child in _iter_scope(node):
                # Assign values are revisited as plain calls otherwise.
                if isinstance(node, ast.Assign) and child is node.value:
                    continue
                visit(child, in_restore)

        for stmt in _iter_scope(scope):
            visit(stmt, False)

        restored_kinds = {
            kind for kind, _, _, restoring in entries if restoring
        }
        captured_kinds = {
            kind for kind, _, captured, _ in entries if captured
        }
        for kind, node, captured, restoring in entries:
            if restoring:
                continue
            call = "signal.setitimer" if kind == "timer" else "signal.signal"
            if not captured:
                # A scope that *did* capture a swap of this kind is
                # already flagged on the capture when the restore is
                # missing; its straight-line restore/disarm calls are
                # not independent discards.
                if kind in captured_kinds:
                    continue
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{call}() discards the previous "
                    f"{'timer' if kind == 'timer' else 'handler'}; "
                    "capture it and restore in a finally (or waive with "
                    "a justification if the install is process-lifetime)",
                )
            elif kind not in restored_kinds:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{call}() swap is never restored in a finally/"
                    "except path of this function; an early exit leaks "
                    "the swapped state into the host",
                )


def _signal_kind(call: ast.Call) -> Optional[str]:
    """``"handler"``/``"timer"`` for signal-state swaps, else ``None``."""
    dotted = dotted_name(call.func)
    if dotted in ("signal.signal", "signal"):
        return "handler"
    if dotted in ("signal.setitimer", "setitimer"):
        return "timer"
    return None


# ----------------------------------------------------------------------
# REPRO-SHM-LIFECYCLE
# ----------------------------------------------------------------------
#: Constructors that map a POSIX shared-memory segment.
SHM_CONSTRUCTORS = frozenset(
    {"SharedMemory", "_QuietSharedMemory", "QuietSharedMemory"}
)


class ShmLifecycleRule(Rule):
    rule_id = "REPRO-SHM-LIFECYCLE"
    summary = (
        "every SharedMemory create/attach must reach close()/unlink() "
        "or be handed to an owner in the same function"
    )
    motivation = (
        "PR 9's segment-leak class: a mapping dropped on an error path "
        "pins /dev/shm until the supervisor sweep"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            for finding in self._scan_scope(ctx, scope):
                yield finding

    def _scan_scope(
        self, ctx: FileContext, scope: ast.AST
    ) -> Iterator[Finding]:
        creations: List[Tuple[str, ast.Call]] = []
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if _is_shm_constructor(node.value):
                    names = [
                        target.id
                        for target in node.targets
                        if isinstance(target, ast.Name)
                    ]
                    attr_targets = [
                        target
                        for target in node.targets
                        if isinstance(target, ast.Attribute)
                    ]
                    if names:
                        creations.append((names[0], node.value))
                    elif not attr_targets:
                        yield ctx.finding(
                            self.rule_id,
                            node.value,
                            "shared-memory mapping bound to an "
                            "untrackable target; bind it to a name so "
                            "close() is checkable",
                        )
                    # self._shm = SharedMemory(...) transfers ownership
                    # to the object; its close path is out of scope.
        for node in _walk_scope(scope):
            if (
                isinstance(node, ast.Call)
                and _is_shm_constructor(node)
                and not self._is_consumed(node, scope)
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "shared-memory mapping is discarded without a "
                    "handle; nothing can ever close() it",
                )
        for name, call in creations:
            if not _name_reaches_owner(scope, name, call):
                yield ctx.finding(
                    self.rule_id,
                    call,
                    f"segment handle {name!r} never reaches close()/"
                    "unlink() and never escapes to an owner; every "
                    "control-flow path must release the mapping "
                    "(owners unlink when the refcount drains)",
                )

    @staticmethod
    def _is_consumed(call: ast.Call, scope: ast.AST) -> bool:
        """Whether *call*'s result is bound, returned or passed along."""
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign) and node.value is call:
                return True
            if isinstance(node, (ast.Return, ast.Yield)) and (
                node.value is call
            ):
                return True
            if isinstance(node, ast.Call) and node is not call:
                if call in node.args or any(
                    keyword.value is call for keyword in node.keywords
                ):
                    return True
        return False


def _is_shm_constructor(call: ast.Call) -> bool:
    last = terminal_name(call.func)
    return last in SHM_CONSTRUCTORS


def _name_reaches_owner(
    scope: ast.AST, name: str, creation: ast.Call
) -> bool:
    """Whether *name*'s mapping is closed or handed off in *scope*."""
    for node in _walk_scope(scope):
        if isinstance(node, ast.Call):
            if node is creation:
                continue
            # shm.close() / shm.unlink()
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("close", "unlink")
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
            # SharedGraphSegment(name, shm, ...) — ownership transfer
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(value)
            ):
                return True
        elif isinstance(node, ast.Assign):
            # self._shm = shm — the object owns it now
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == name
                and any(
                    isinstance(target, ast.Attribute)
                    for target in node.targets
                )
            ):
                return True
    return False


register_rule(AsyncBlockRule())
register_rule(LockHeldRule())
register_rule(SignalRestoreRule())
register_rule(ShmLifecycleRule())
