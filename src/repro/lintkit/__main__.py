"""``python -m repro.lintkit`` — same engine as ``repro lint``."""

import sys

from repro.lintkit.cli import main

if __name__ == "__main__":
    sys.exit(main())
