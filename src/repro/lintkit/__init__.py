"""repro lint: AST-based concurrency & determinism invariant checker.

The codebase's hard-won rules — no blocking calls on the event loop, no
expensive builds under a lock, signal swaps restore in a finally,
shared-memory mappings always reach ``close()``, canonical payloads are
deterministic, backend dispatch stays behind the registry seam — as
machine-enforced CI gates instead of reviewer memory.

Entry points: ``repro lint`` (CLI), ``python -m repro.lintkit``, or
:func:`lint_paths` / :func:`lint_source` from code.  See
:mod:`repro.lintkit.runner` for the framework and the ``rules_*``
modules for the invariants.
"""

from repro.lintkit.findings import (
    SCHEMA_VERSION,
    Finding,
    render_json,
    render_text,
)
from repro.lintkit.runner import (
    PARSE_RULE_ID,
    FileContext,
    LintConfig,
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register_rule,
    walk_python_files,
)
from repro.lintkit.suppressions import SUPPRESS_RULE_ID, SuppressionIndex

__all__ = [
    "PARSE_RULE_ID",
    "SCHEMA_VERSION",
    "SUPPRESS_RULE_ID",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "SuppressionIndex",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "walk_python_files",
]
