"""``# repro: allow[RULE-ID]`` suppression comments.

A finding is sometimes the *intended* behaviour — a worker that ignores
``SIGINT`` for its whole lifetime, a lock deliberately held across a
serialised solve.  Those sites carry an inline waiver::

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # repro: allow[REPRO-SIGNAL-RESTORE] -- shutdown is router-coordinated

    # repro: allow[REPRO-LOCK-HELD] -- one session's batches serialise by design
    with session.lock:
        ...

Rules of the waiver:

* The justification after ``--`` is **required**.  A bare
  ``allow[RULE]`` suppresses nothing and is itself reported as a
  ``REPRO-SUPPRESS`` finding — an unexplained waiver is exactly the
  reviewer-memory failure this tool exists to replace.
* A waiver on a code line covers findings anchored to that line; a
  waiver on a comment-only line covers the next code line (for sites
  where the justification does not fit in the line budget).
* Several ids may share one waiver: ``allow[RULE-A, RULE-B] -- why``.

Comments are discovered with :mod:`tokenize` (never by substring
scanning), so a string literal that merely *contains* the marker text
can not waive anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lintkit.findings import Finding

__all__ = ["SUPPRESS_RULE_ID", "SuppressionIndex"]

#: Framework rule id reported for malformed waivers.
SUPPRESS_RULE_ID = "REPRO-SUPPRESS"

#: ``repro: allow[ID, ...]`` with an optional ``-- justification`` tail.
#: Anchored at the comment start: a waiver must be the whole comment,
#: so prose that merely mentions the marker mid-comment is inert.
_ALLOW_RE = re.compile(
    r"^#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?\s*$"
)

#: Loose detector for things that *look like* a waiver but do not parse
#: (e.g. a bracket-less ``allow REPRO-FOO``) — reported, not ignored.
_ALLOW_HINT_RE = re.compile(r"^#\s*repro:\s*allow\b")


class SuppressionIndex:
    """Per-file map of which rule ids are waived on which lines."""

    def __init__(
        self,
        allowed: Dict[int, Set[str]],
        malformed: Sequence[Tuple[int, int, str]],
    ) -> None:
        self._allowed = allowed
        #: ``(line, col, message)`` of every malformed waiver
        self.malformed = list(malformed)

    @classmethod
    def scan(cls, source: str) -> "SuppressionIndex":
        """Build the index from one file's source text."""
        allowed: Dict[int, Set[str]] = {}
        malformed: List[Tuple[int, int, str]] = []
        comments: List[Tuple[int, int, str, bool]] = []
        code_lines: Set[int] = set()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # The AST pass reports the parse failure; nothing to waive.
            return cls({}, [])
        for token in tokens:
            if token.type == tokenize.COMMENT:
                # A comment opening at column 0... is still "own line"
                # only if no code token shares the line; resolved below.
                comments.append(
                    (token.start[0], token.start[1], token.string, False)
                )
            elif token.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
                tokenize.ENCODING,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
        for line, col, text, _ in comments:
            if not _ALLOW_HINT_RE.search(text):
                continue
            match = _ALLOW_RE.search(text)
            if match is None:
                malformed.append(
                    (line, col, "unparseable waiver; the form is "
                     "'# repro: allow[RULE-ID] -- justification'")
                )
                continue
            rules = {
                rule.strip()
                for rule in match.group("rules").split(",")
                if rule.strip()
            }
            why = match.group("why")
            if not rules:
                malformed.append(
                    (line, col, "waiver names no rule id")
                )
                continue
            if not why:
                malformed.append(
                    (line, col,
                     f"waiver for {', '.join(sorted(rules))} has no "
                     "justification; append '-- <one-line reason>'")
                )
                continue
            target = line if line in code_lines else _next_code_line(
                line, code_lines
            )
            if target is not None:
                allowed.setdefault(target, set()).update(rules)
        return cls(allowed, malformed)

    def allows(self, rule: str, line: int) -> bool:
        """Whether a justified waiver covers *rule* at *line*."""
        return rule in self._allowed.get(line, set())

    def malformed_findings(self, path: str) -> List[Finding]:
        """Every malformed waiver as a :data:`SUPPRESS_RULE_ID` finding."""
        return [
            Finding(SUPPRESS_RULE_ID, path, line, col, message)
            for line, col, message in self.malformed
        ]


def _next_code_line(line: int, code_lines: Set[int]) -> Optional[int]:
    later = [candidate for candidate in code_lines if candidate > line]
    return min(later) if later else None
