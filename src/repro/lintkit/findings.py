"""The finding vocabulary: what a rule reports and how it is rendered.

A :class:`Finding` is one violation at one source location — rule id,
path, line, column, message — ordered by location so reports are stable
across runs and platforms.  Two renderers consume them:

* :func:`render_text` — one ``path:line:col: RULE-ID message`` line per
  finding plus a summary, the shape editors and CI logs expect;
* :func:`render_json` — a versioned machine-readable report (the CI
  ``lint-invariants`` job uploads it as an artefact), schema below.

JSON report layout (``SCHEMA_VERSION`` guards consumers)::

    {"version": 1,
     "files": 131,                        # files scanned
     "clean": false,
     "counts": {"REPRO-ASYNC-BLOCK": 2},  # findings per rule id
     "findings": [{"rule": "REPRO-ASYNC-BLOCK",
                   "path": "src/repro/service/app.py",
                   "line": 10, "col": 4,
                   "message": "..."}]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "Finding",
    "render_json",
    "render_text",
    "sort_findings",
]

#: Version of the JSON report layout; bump on any shape change.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text form."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-report record of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form."""
        return f"{self.location}: {self.rule} {self.message}"


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic report order: by path, then line/col, then rule."""

    def key(finding: Finding) -> Tuple[str, int, int, str]:
        return (finding.path, finding.line, finding.col, finding.rule)

    return sorted(findings, key=key)


def _counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def render_text(findings: Sequence[Finding], files: int) -> str:
    """The human report: one line per finding plus a summary line."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    if ordered:
        per_rule = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(_counts(ordered).items())
        )
        lines.append(
            f"{len(ordered)} finding(s) in {files} file(s): {per_rule}"
        )
    else:
        lines.append(f"clean: 0 findings in {files} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files: int) -> str:
    """The machine report (sorted keys, trailing-newline-free)."""
    ordered = sort_findings(findings)
    report = {
        "version": SCHEMA_VERSION,
        "files": files,
        "clean": not ordered,
        "counts": _counts(ordered),
        "findings": [finding.to_dict() for finding in ordered],
    }
    return json.dumps(report, sort_keys=True, indent=2)
