"""Determinism invariants: canonical payloads and the backend seam.

* :class:`CanonicalDeterminismRule` (``REPRO-CANONICAL-DETERMINISM``) —
  the batch layer's resume/dedup machinery keys on byte-identical
  ``canonical_json`` output; a wall-clock read or bare-set iteration in
  a payload builder silently breaks replay equality across runs.
* :class:`BackendLadderRule` (``REPRO-BACKEND-LADDER``) — the engine's
  registry seam (``resolve_backend``/``get_backend``) is the single
  place allowed to reason about backend names; an ``if backend ==``
  ladder anywhere else re-creates the dispatch sprawl the registry
  replaced.  This promotes the old grep-based test in
  ``tests/test_engine.py`` to a real AST rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lintkit.findings import Finding
from repro.lintkit.runner import (
    FileContext,
    Rule,
    dotted_name,
    register_rule,
    terminal_name,
)

__all__ = ["BackendLadderRule", "CanonicalDeterminismRule"]

# ----------------------------------------------------------------------
# REPRO-CANONICAL-DETERMINISM
# ----------------------------------------------------------------------
#: Function names that construct canonical payloads.  Matching by name
#: keeps the pass single-file while still covering every envelope
#: builder in engine/ and batch/ (and any fixture snippet in tests).
PAYLOAD_BUILDERS = frozenset(
    {
        "payload",
        "canonical_json",
        "canonical_params",
        "canonical_text",
        "cache_key",
        "params",
        "solve_params",
        "to_record",
        "to_json",
        "to_dict",
        "query_to_dict",
    }
)

#: Dotted call names whose result differs run-to-run.
NONDETERMINISTIC_DOTTED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getpid",
        "secrets.token_hex",
        "secrets.token_bytes",
        "secrets.token_urlsafe",
    }
)

#: Any ``random.*`` call is nondeterministic for payload purposes —
#: even seeded, the value depends on global call order.
NONDETERMINISTIC_PREFIXES = ("random.",)


class CanonicalDeterminismRule(Rule):
    rule_id = "REPRO-CANONICAL-DETERMINISM"
    summary = (
        "no wall-clock/random reads and no bare set iteration inside "
        "canonical payload builders (payload, canonical_json, "
        "to_record, cache_key, ...)"
    )
    motivation = (
        "resume/dedup keys on byte-identical canonical_json; a clock "
        "read or unsorted set in a payload builder breaks replay "
        "equality between runs (timings live out-of-band for exactly "
        "this reason)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in PAYLOAD_BUILDERS
            ):
                for finding in self._scan(ctx, node):
                    yield finding

    def _scan(
        self,
        ctx: FileContext,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterator[Finding]:
        where = f"in payload builder {fn.name}()"
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                label = self._nondeterministic(node)
                if label is not None:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"nondeterministic {label}() {where}; canonical "
                        "payloads must be pure functions of the inputs "
                        "(timings/ids go in the out-of-band record)",
                    )
            iterable = _unsorted_set_iter(node)
            if iterable is not None:
                yield ctx.finding(
                    self.rule_id,
                    iterable,
                    f"iterating a set {where} has no guaranteed order "
                    "(hash randomisation); wrap it in sorted()",
                )

    @staticmethod
    def _nondeterministic(call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        if dotted in NONDETERMINISTIC_DOTTED:
            return dotted
        for prefix in NONDETERMINISTIC_PREFIXES:
            if dotted.startswith(prefix):
                return dotted
        return None


def _unsorted_set_iter(node: ast.AST) -> Optional[ast.AST]:
    """The offending iterable if *node* loops over a literal/built set."""
    iterables: List[ast.expr] = []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        iterables.append(node.iter)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
        iterables.extend(gen.iter for gen in node.generators)
    elif isinstance(node, ast.GeneratorExp):
        iterables.extend(gen.iter for gen in node.generators)
    for candidate in iterables:
        if isinstance(candidate, (ast.Set, ast.SetComp)):
            return candidate
        if isinstance(candidate, ast.Call):
            last = terminal_name(candidate.func)
            if last in ("set", "frozenset"):
                return candidate
    return None


# ----------------------------------------------------------------------
# REPRO-BACKEND-LADDER
# ----------------------------------------------------------------------
#: The one module allowed to compare backend names: the registry seam.
_REGISTRY_SUFFIX = "engine/registry.py"


class BackendLadderRule(Rule):
    rule_id = "REPRO-BACKEND-LADDER"
    summary = (
        "no 'backend == \"...\"' string comparisons outside "
        "engine/registry.py; dispatch goes through "
        "resolve_backend/get_backend"
    )
    motivation = (
        "the registry seam replaced per-callsite if/elif backend "
        "ladders; one stray comparison re-forks the dispatch logic and "
        "skips alias/env resolution"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.display.endswith(_REGISTRY_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare) and self._is_backend_compare(
                node
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "string comparison against a backend name outside "
                    "engine/registry.py; route through "
                    "resolve_backend()/get_backend() so aliases and env "
                    "overrides keep working",
                )

    @staticmethod
    def _is_backend_compare(node: ast.Compare) -> bool:
        operands = [node.left] + list(node.comparators)
        names = any(_is_backend_ref(operand) for operand in operands)
        strings = any(_is_str_operand(operand) for operand in operands)
        ops_ok = all(
            isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
            for op in node.ops
        )
        return names and strings and ops_ok


def _is_backend_ref(node: ast.AST) -> bool:
    """``backend`` / ``x.backend`` / ``backend_name`` references."""
    name = terminal_name(node)
    return name is not None and (
        name == "backend" or name.endswith("_backend") or name == "backend_name"
    )


def _is_str_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_is_str_operand(element) for element in node.elts)
    return False


register_rule(CanonicalDeterminismRule())
register_rule(BackendLadderRule())
