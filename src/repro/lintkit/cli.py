"""Command-line front end: ``repro lint`` / ``python -m repro.lintkit``.

Exit codes follow the usual linter contract::

    0  clean (or --list-rules)
    1  findings reported
    2  usage / environment error (unknown rule id, missing path)

``--format json`` emits the versioned report documented in
:mod:`repro.lintkit.findings`; ``--output`` tees it to a file (CI
uploads that file as the ``lint-findings`` artefact) while the summary
still goes to stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lintkit.findings import render_json, render_text
from repro.lintkit.runner import LintConfig, all_rules, lint_paths

__all__ = ["add_arguments", "build_parser", "main", "run_from_args"]

#: Default lint target when no paths are given.
DEFAULT_PATHS = ("src/repro",)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, summary, motivation) and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based concurrency & determinism invariant checker for "
            "the repro codebase"
        ),
    )
    add_arguments(parser)
    return parser


def _split_rules(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _render_rule_table() -> str:
    lines: List[str] = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}")
        lines.append(f"  {rule.summary}")
        lines.append(f"  why: {rule.motivation}")
    return "\n".join(lines)


def run_from_args(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed *args*; returns the exit code."""
    if args.list_rules:
        print(_render_rule_table())
        return 0
    select = _split_rules(args.select)
    ignore = _split_rules(args.ignore) or []
    config = LintConfig(
        select=frozenset(select) if select is not None else None,
        ignore=frozenset(ignore),
    )
    try:
        report = lint_paths(args.paths, config)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.output is not None:
        Path(args.output).write_text(
            render_json(report.findings, report.files) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(render_json(report.findings, report.files))
    else:
        print(render_text(report.findings, report.files))
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.lintkit`` entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_from_args(args)
