"""The checker framework: rule registry, file walker, lint driver.

The framework is generic so later PRs add rules cheaply: a rule is a
:class:`Rule` subclass with a ``rule_id``, a one-line ``summary`` and a
``check(ctx)`` generator over one parsed file
(:class:`FileContext` — path, source, AST, helpers).  Registration is
one :func:`register_rule` call; :func:`lint_paths` walks files, parses
each exactly once, runs every enabled rule, applies the
``# repro: allow[...]`` waivers (:mod:`repro.lintkit.suppressions`) and
returns location-sorted findings.

Two framework-level rule ids exist outside the registry and are always
on (they guard the tool's own integrity, so ``--select``/``--ignore``
do not touch them):

* ``REPRO-PARSE`` — a file that does not parse cannot be certified;
* ``REPRO-SUPPRESS`` — a malformed or justification-free waiver.

AST passes are intentionally *syntactic*: no imports are executed and
no cross-file resolution happens, so the whole tree lints in well under
a second and the pass is safe to run on broken working states.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lintkit.findings import Finding, sort_findings
from repro.lintkit.suppressions import SuppressionIndex

__all__ = [
    "PARSE_RULE_ID",
    "FileContext",
    "LintConfig",
    "LintReport",
    "Rule",
    "all_rules",
    "dotted_name",
    "lint_paths",
    "lint_source",
    "register_rule",
    "terminal_name",
    "walk_python_files",
]

#: Framework rule id reported when a file fails to parse.
PARSE_RULE_ID = "REPRO-PARSE"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else.

    The shared matcher currency of every rule: ``self.shm_store.export``
    dots to ``"self.shm_store.export"``; a subscript or call in the
    chain yields ``None`` (rules only match statically-obvious shapes).
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last segment of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    #: path as reported in findings (posix separators, as given)
    display: str
    source: str
    tree: ast.Module

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """A finding anchored at *node*'s location in this file."""
        return Finding(
            rule,
            self.display,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )


class Rule:
    """One invariant: an id, a summary, and a per-file ``check`` pass.

    Subclasses set ``rule_id`` (the ``REPRO-*`` name findings and
    waivers use), ``summary`` (one line for ``--list-rules`` and the
    docs table) and ``motivation`` (the past bug that earned the rule
    its place).  ``check`` yields findings; it must not mutate the AST.
    """

    rule_id: str = ""
    summary: str = ""
    motivation: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self) -> str:
        return f"<Rule {self.rule_id}>"


_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add *rule* to the registry (its id must be new and non-empty)."""
    if not rule.rule_id:
        raise ValueError("a rule must declare a non-empty rule_id")
    if rule.rule_id in _RULES:
        raise ValueError(f"rule {rule.rule_id!r} is already registered")
    _RULES[rule.rule_id] = rule
    return rule


def unregister_rule(rule_id: str) -> None:
    """Remove a rule (tests plug in throwaway rules)."""
    _RULES.pop(rule_id, None)


def _ensure_builtin_rules() -> None:
    """Import the built-in rule modules (registration is import-time)."""
    from repro.lintkit import rules_concurrency, rules_determinism  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection.

    ``select`` (when non-empty) is an allow-list of rule ids; ``ignore``
    removes ids from whatever is selected.  Unknown ids raise
    ``ValueError`` — a typoed rule name silently checking nothing is
    how invariants rot.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()

    def enabled(self, rules: Sequence[Rule]) -> List[Rule]:
        known = {rule.rule_id for rule in rules}
        requested = set(self.select or ()) | set(self.ignore)
        unknown = sorted(requested - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; known: {sorted(known)}"
            )
        return [
            rule
            for rule in rules
            if (self.select is None or rule.rule_id in self.select)
            and rule.rule_id not in self.ignore
        ]


@dataclass
class LintReport:
    """One run's outcome: ordered findings + how many files were read."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def walk_python_files(paths: Iterable[str]) -> List[Path]:
    """Every ``*.py`` under *paths* (files or directories), sorted.

    Missing paths raise ``FileNotFoundError`` — linting nothing must
    never read as a clean pass.
    """
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            seen.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(seen)


def lint_source(
    source: str,
    display: str,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one in-memory source blob (the unit tests' entry point)."""
    config = config or LintConfig()
    enabled = config.enabled(all_rules())
    findings: List[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        findings.append(
            Finding(
                PARSE_RULE_ID, display, line, max(col, 0),
                f"file does not parse: {exc.msg}",
            )
        )
        return findings
    suppressions = SuppressionIndex.scan(source)
    findings.extend(suppressions.malformed_findings(display))
    ctx = FileContext(display=display, source=source, tree=tree)
    seen: Set[Tuple[str, int, int]] = set()
    for rule in enabled:
        for finding in rule.check(ctx):
            # Nested constructs (a lock block inside a lock block) can
            # surface one violation through two scans; report each
            # (rule, location) once.
            key = (finding.rule, finding.line, finding.col)
            if key in seen:
                continue
            seen.add(key)
            if not suppressions.allows(finding.rule, finding.line):
                findings.append(finding)
    return sort_findings(findings)


def lint_paths(
    paths: Iterable[str],
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint every python file under *paths*; the CLI's engine."""
    report = LintReport()
    for path in walk_python_files(paths):
        display = path.as_posix()
        source = path.read_text(encoding="utf-8")
        report.findings.extend(lint_source(source, display, config))
        report.files += 1
    report.findings = sort_findings(report.findings)
    return report
