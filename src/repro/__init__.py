"""repro — a reproduction of *Mining Density Contrast Subgraphs* (ICDE 2018).

Given two weighted graphs ``G1`` and ``G2`` over the same vertices, find
the subgraph whose density differs the most between them.  Two density
measures are supported, each with the paper's algorithm:

* **average degree** (DCSAD) — :func:`repro.dcs_average_degree`, the
  *DCSGreedy* algorithm with a data-dependent approximation ratio;
* **graph affinity** (DCSGA) — :func:`repro.dcs_graph_affinity`, the
  *NewSEA* pipeline (coordinate-descent SEA + refinement + smart
  initialisation) that always returns a positive-clique solution.

Quickstart::

    from repro import Graph, dcs_average_degree, dcs_graph_affinity

    g1 = Graph.from_edges([("a", "b", 1.0)], vertices="abcd")
    g2 = Graph.from_edges(
        [("a", "b", 3.0), ("b", "c", 2.0), ("a", "c", 2.5)], vertices="abcd"
    )
    print(dcs_average_degree(g1, g2).subset)       # {'a', 'b', 'c'}
    print(dcs_graph_affinity(g1, g2).support)      # {'a', 'b', 'c'}

Lower-level building blocks live in the subpackages: :mod:`repro.graph`
(graph substrate), :mod:`repro.engine` (the unified solver engine:
pluggable backend registry, :class:`~repro.engine.PreparedGraph`
shared-preparation context, typed result envelope), :mod:`repro.core`
(the paper's algorithms), :mod:`repro.affinity` (the original-SEA
baseline), :mod:`repro.flow` (exact densest subgraph),
:mod:`repro.baselines` (EgoScan), :mod:`repro.datasets` (synthetic
data) and :mod:`repro.analysis` (metrics and reporting).  Two serving
layers sit on top: :mod:`repro.stream` (incremental DCS over live edge
events) and :mod:`repro.batch` (many-query submissions with shared
preprocessing, worker processes and a content-addressed result cache).
"""

from __future__ import annotations

from repro.core.dcsad import DCSADResult, dcs_greedy
from repro.core.difference import difference_graph
from repro.core.newsea import DCSGAResult, new_sea
from repro.graph.graph import Graph, Vertex

__version__ = "1.0.0"


def dcs_average_degree(
    g1: Graph, g2: Graph, alpha: float = 1.0, backend: str = "python"
) -> DCSADResult:
    """Solve DCSAD on the pair ``(G1, G2)``: maximise ``rho_2 - alpha rho_1``.

    Builds the difference graph ``D = A2 - alpha A1`` and runs DCSGreedy
    (Algorithm 2).  The result carries the subset, its density contrast,
    and the data-dependent approximation ratio of Theorem 2.

    *backend*: ``"python"`` (pure-Python reference) or ``"sparse"``
    (vectorised CSR peeling).
    """
    return dcs_greedy(difference_graph(g1, g2, alpha=alpha), backend=backend)


def dcs_graph_affinity(
    g1: Graph, g2: Graph, alpha: float = 1.0, backend: str = "python"
) -> DCSGAResult:
    """Solve DCSGA on the pair ``(G1, G2)``: maximise ``f_2(x) - alpha f_1(x)``.

    Builds ``GD+`` and runs NewSEA (Algorithm 5).  The returned support
    is always a positive clique of the difference graph (Theorem 5): a
    set of vertices every pair of which is more tightly connected in
    ``G2`` than in ``G1``.

    *backend*: ``"python"`` (pure-Python reference) or ``"sparse"``
    (vectorised CSR solver kernels).
    """
    gd = difference_graph(g1, g2, alpha=alpha)
    return new_sea(gd.positive_part(), backend=backend)


__all__ = [
    "Graph",
    "Vertex",
    "DCSADResult",
    "DCSGAResult",
    "dcs_average_degree",
    "dcs_graph_affinity",
    "difference_graph",
    "dcs_greedy",
    "new_sea",
    "__version__",
]
