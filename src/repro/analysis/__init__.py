"""Measurement and reporting utilities for experiments.

* :mod:`repro.analysis.metrics` — the paper's density measures and their
  contrast variants.
* :mod:`repro.analysis.stats` — Table II dataset statistics.
* :mod:`repro.analysis.reporting` — ASCII tables/series used by the
  benchmark harness to regenerate every table and figure.
* :mod:`repro.analysis.clique_census` — Fig. 3 clique-size censuses.
"""

from repro.analysis.clique_census import (
    CliqueCensus,
    census_from_all_inits,
    census_from_solutions,
    census_series,
    verify_cliques,
)
from repro.analysis.metrics import (
    affinity,
    affinity_contrast,
    average_degree,
    average_degree_contrast,
    edge_density,
    edge_density_contrast,
    embedding_summary,
    support,
    total_degree,
    total_degree_contrast,
    uniform_affinity,
)
from repro.analysis.reporting import (
    Series,
    Table,
    format_embedding,
    format_ratio,
    yes_no,
)
from repro.analysis.validation import (
    RecoveryScore,
    best_match,
    recovery_report,
    score_against,
)
from repro.analysis.stats import (
    NamedDifferenceGraph,
    dataset_stats_row,
    dataset_stats_table,
    positive_density_series,
)

__all__ = [
    "affinity",
    "affinity_contrast",
    "average_degree",
    "average_degree_contrast",
    "edge_density",
    "edge_density_contrast",
    "embedding_summary",
    "support",
    "total_degree",
    "total_degree_contrast",
    "uniform_affinity",
    "Series",
    "Table",
    "format_embedding",
    "format_ratio",
    "yes_no",
    "NamedDifferenceGraph",
    "dataset_stats_row",
    "dataset_stats_table",
    "positive_density_series",
    "RecoveryScore",
    "score_against",
    "best_match",
    "recovery_report",
    "CliqueCensus",
    "census_from_all_inits",
    "census_from_solutions",
    "census_series",
    "verify_cliques",
]
