"""Clique census of multi-initialisation DCSGA runs (Fig. 3).

The SEACD+Refinement configuration initialises from every vertex and
therefore returns *many* positive cliques, not just the best one.  The
paper post-processes them — deduplicate, drop sub-cliques — and plots the
count of k-cliques per size k for each Douban difference graph (Fig. 3).
This module packages that census.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.reporting import Series
from repro.core.newsea import AllInitsResult
from repro.graph.cliques import remove_subsumed_cliques
from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class CliqueCensus:
    """Counts of solution cliques grouped by size."""

    counts: Dict[int, int]
    total: int

    def at_least(self, min_size: int) -> Dict[int, int]:
        """Sub-census restricted to ``size >= min_size`` (paper's k>=8/10)."""
        return {
            size: count
            for size, count in sorted(self.counts.items())
            if size >= min_size
        }

    def max_size(self) -> int:
        return max(self.counts, default=0)


def census_from_solutions(
    solutions: Sequence[Tuple[Set[Vertex], dict, float]],
) -> CliqueCensus:
    """Census of the (already deduplicated) all-inits solution list."""
    supports = [support for support, _, _ in solutions]
    kept = remove_subsumed_cliques(supports)
    counts: Dict[int, int] = {}
    for clique in kept:
        counts[len(clique)] = counts.get(len(clique), 0) + 1
    return CliqueCensus(counts=counts, total=len(kept))


def census_from_all_inits(result: AllInitsResult) -> CliqueCensus:
    """Census straight from :func:`repro.core.newsea.solve_all_initializations`."""
    return census_from_solutions(result.solutions)


def census_series(
    census: CliqueCensus, title: str, min_size: int = 1
) -> Series:
    """Fig. 3 style series: x = clique size, y = #cliques."""
    series = Series(title=title, x_label="Clique Size", y_label="#Cliques")
    for size, count in sorted(census.at_least(min_size).items()):
        series.add(float(size), float(count))
    return series


def verify_cliques(
    gd_plus: Graph, solutions: Sequence[Tuple[Set[Vertex], dict, float]]
) -> List[Set[Vertex]]:
    """Return the solution supports that are *not* cliques of ``GD+``.

    Sanity hook for the benches: SEACD+Refinement must only emit positive
    cliques, so the returned list should always be empty.
    """
    offenders: List[Set[Vertex]] = []
    for support, _, _ in solutions:
        members = list(support)
        clique = True
        for index, u in enumerate(members):
            row = gd_plus.neighbors(u)
            for v in members[index + 1 :]:
                if v not in row:
                    clique = False
                    break
            if not clique:
                break
        if not clique:
            offenders.append(set(support))
    return offenders
