"""Plain-text table and series rendering for the benchmark harness.

The benches regenerate the paper's tables and figures as text: tables in
a fixed-width ASCII layout, figures (Figs. 2 and 3 are scatter/bar data)
as aligned ``x y`` series plus a crude unicode bar rendering so the
*shape* comparison with the paper can be made in a terminal or log file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass
class Table:
    """A fixed-width text table with a title row."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row; cells are str()-ed, length-checked."""
        values = [str(cell) for cell in cells]
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(values)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        """The table as aligned text with a rule under the header."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(cells)
            ).rstrip()

        parts = [self.title, line(self.columns), line(["-" * w for w in widths])]
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Series:
    """Numeric ``(x, y)`` data standing in for one curve of a figure."""

    title: str
    x_label: str
    y_label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def sorted_points(self) -> List[Tuple[float, float]]:
        return sorted(self.points)

    def render(self, bar_width: int = 40) -> str:
        """Aligned ``x y`` rows with proportional unicode bars."""
        if not self.points:
            return f"{self.title}\n(no data)"
        points = self.sorted_points()
        max_y = max(abs(y) for _, y in points) or 1.0
        lines = [self.title, f"{self.x_label:>12}  {self.y_label}"]
        for x, y in points:
            bar = "#" * max(1, int(round(bar_width * abs(y) / max_y))) if y else ""
            lines.append(f"{x:12.4g}  {y:10.4g}  {bar}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_embedding(
    embedding: Iterable[Tuple[object, float]],
    max_entries: Optional[int] = None,
) -> str:
    """Paper-style embedding rendering: ``{a (0.50), b (0.50)}``."""
    items = sorted(embedding, key=lambda kv: -kv[1])
    if max_entries is not None:
        items = items[:max_entries]
    inner = ", ".join(f"{vertex} ({weight:.2f})" for vertex, weight in items)
    return "{" + inner + "}"


def format_ratio(value: Optional[float]) -> str:
    """Approximation-ratio cell: two decimals or '-' when undefined."""
    return "-" if value is None else f"{value:.2f}"


def yes_no(flag: bool) -> str:
    """Positive-clique style cells."""
    return "Yes" if flag else "No"
