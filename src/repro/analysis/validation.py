"""Ground-truth recovery metrics for planted-structure experiments.

The synthetic datasets carry planted groups/topics; these helpers score a
mined subgraph against them — the quantitative backbone of the examples
and of several bench assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Vertex


@dataclass(frozen=True)
class RecoveryScore:
    """Set-overlap scores of a found subset against one target set."""

    precision: float
    recall: float
    jaccard: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def score_against(found: Iterable[Vertex], target: Iterable[Vertex]) -> RecoveryScore:
    """Precision/recall/Jaccard of *found* w.r.t. *target*."""
    found_set = set(found)
    target_set = set(target)
    if not found_set:
        raise ValueError("found set is empty")
    if not target_set:
        raise ValueError("target set is empty")
    hit = len(found_set & target_set)
    return RecoveryScore(
        precision=hit / len(found_set),
        recall=hit / len(target_set),
        jaccard=hit / len(found_set | target_set),
    )


def best_match(
    found: Iterable[Vertex], targets: Sequence[Iterable[Vertex]]
) -> Tuple[Optional[int], Optional[RecoveryScore]]:
    """The planted group matching *found* best (by Jaccard).

    Returns ``(index, score)``; ``(None, None)`` when *targets* is empty.
    """
    found_set = set(found)
    best_index: Optional[int] = None
    best_score: Optional[RecoveryScore] = None
    for index, target in enumerate(targets):
        score = score_against(found_set, target)
        if best_score is None or score.jaccard > best_score.jaccard:
            best_index, best_score = index, score
    return best_index, best_score


def recovery_report(
    found_sets: Sequence[Iterable[Vertex]],
    targets: Sequence[Iterable[Vertex]],
    threshold: float = 0.5,
) -> dict:
    """Aggregate recovery of many answers against many planted groups.

    A target counts as *recovered* when some found set reaches Jaccard
    >= *threshold* against it.  Returns the per-target best Jaccard, the
    recovered count and the recovery rate.
    """
    if not targets:
        raise ValueError("no targets to score against")
    per_target: List[float] = []
    for target in targets:
        best = 0.0
        for found in found_sets:
            if not set(found):
                continue
            best = max(best, score_against(found, target).jaccard)
        per_target.append(best)
    recovered = sum(1 for value in per_target if value >= threshold)
    return {
        "per_target_jaccard": per_target,
        "recovered": recovered,
        "total": len(targets),
        "rate": recovered / len(targets),
    }
