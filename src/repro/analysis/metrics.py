"""Density measures (Section III-A) and contrast evaluations.

All conventions follow the paper:

* total degree ``W(S)`` counts each undirected edge twice (Eq. 1);
* average degree ``rho(S) = W(S)/|S|``;
* edge density ``W(S)/|S|^2`` — "the discrete version of graph affinity";
* graph affinity ``f(x) = x^T A x`` over the simplex.

Contrast variants take either the pair ``(G1, G2)`` or a prebuilt
difference graph; on the difference graph each measure *is* the contrast
(Eqs. 5 and 6).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Set

from repro.graph.graph import Graph, Vertex


def total_degree(graph: Graph, subset: Iterable[Vertex]) -> float:
    """``W(S)``: sum of induced weighted degrees (each edge twice)."""
    return graph.total_degree(set(subset))


def average_degree(graph: Graph, subset: Iterable[Vertex]) -> float:
    """``rho(S) = W(S)/|S|``; 0 density for a singleton."""
    members = set(subset)
    if not members:
        raise ValueError("average degree of an empty set is undefined")
    return graph.total_degree(members) / len(members)


def edge_density(graph: Graph, subset: Iterable[Vertex]) -> float:
    """``W(S)/|S|^2`` — the discrete version of graph affinity."""
    members = set(subset)
    if not members:
        raise ValueError("edge density of an empty set is undefined")
    return graph.total_degree(members) / (len(members) ** 2)


def affinity(graph: Graph, x: Mapping[Vertex, float]) -> float:
    """``f(x) = x^T A x``: each edge contributes ``2 x_u x_v w(u, v)``."""
    total = 0.0
    for u, xu in x.items():
        if xu == 0.0 or not graph.has_vertex(u):
            continue
        for v, weight in graph.neighbors(u).items():
            xv = x.get(v)
            if xv:
                total += xu * xv * weight
    return total


def uniform_affinity(graph: Graph, subset: Iterable[Vertex]) -> float:
    """Affinity of the uniform embedding on *subset* (= edge density)."""
    members = set(subset)
    if not members:
        raise ValueError("uniform affinity of an empty set is undefined")
    share = 1.0 / len(members)
    return affinity(graph, {u: share for u in members})


# ----------------------------------------------------------------------
# contrast evaluations on pairs
# ----------------------------------------------------------------------
def average_degree_contrast(
    g1: Graph, g2: Graph, subset: Iterable[Vertex]
) -> float:
    """``rho_2(S) - rho_1(S)`` (Eq. 3)."""
    members = set(subset)
    return average_degree(g2, members) - average_degree(g1, members)


def edge_density_contrast(
    g1: Graph, g2: Graph, subset: Iterable[Vertex]
) -> float:
    """Edge-density gap ``W_2(S)/|S|^2 - W_1(S)/|S|^2``."""
    members = set(subset)
    return edge_density(g2, members) - edge_density(g1, members)


def affinity_contrast(
    g1: Graph, g2: Graph, x: Mapping[Vertex, float]
) -> float:
    """``f_2(x) - f_1(x)`` (Eq. 4)."""
    return affinity(g2, x) - affinity(g1, x)


def total_degree_contrast(
    g1: Graph, g2: Graph, subset: Iterable[Vertex]
) -> float:
    """``W_2(S) - W_1(S)`` — EgoScan's objective on the pair."""
    members = set(subset)
    return total_degree(g2, members) - total_degree(g1, members)


def support(x: Mapping[Vertex, float]) -> Set[Vertex]:
    """``Sx = {u : x_u > 0}``."""
    return {u for u, value in x.items() if value > 0.0}


def embedding_summary(gd: Graph, x: Mapping[Vertex, float]) -> dict:
    """The per-solution row used across the result tables.

    Returns affinity difference, edge density difference, average degree
    difference and total edge weight difference of the support, as
    reported for DCSGA solutions in Tables IV, XI, XIII, XIV and IX.
    """
    members = support(x)
    if not members:
        raise ValueError("empty embedding")
    return {
        "size": len(members),
        "affinity": affinity(gd, x),
        "edge_density": edge_density(gd, members),
        "average_degree": average_degree(gd, members),
        "total_weight": total_degree(gd, members),
    }
