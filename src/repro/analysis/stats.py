"""Dataset statistics: the rows of Table II.

For each difference graph the paper reports ``n``, ``m+``, ``m-``,
max/min/average edge weight.  :func:`dataset_stats_row` renders one row;
:func:`dataset_stats_table` renders a list of named difference graphs in
the paper's layout through :mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import Table
from repro.core.difference import DifferenceStats, difference_stats
from repro.graph.graph import Graph


@dataclass(frozen=True)
class NamedDifferenceGraph:
    """A difference graph plus its Table II identity columns."""

    data: str
    setting: str
    gd_type: str
    graph: Graph

    def stats(self) -> DifferenceStats:
        return difference_stats(self.graph)


def _fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.{digits}g}"


def dataset_stats_row(entry: NamedDifferenceGraph) -> List[str]:
    """One Table II row: Data, Setting, GD Type, n, m+, m-, weights."""
    stats = entry.stats()
    return [
        entry.data,
        entry.setting or "-",
        entry.gd_type or "-",
        str(stats.num_vertices),
        str(stats.num_positive_edges),
        str(stats.num_negative_edges),
        _fmt(stats.max_weight),
        _fmt(stats.min_weight),
        _fmt(stats.average_weight, digits=4),
    ]


def dataset_stats_table(entries: Sequence[NamedDifferenceGraph]) -> Table:
    """Table II for a collection of difference graphs."""
    table = Table(
        title="Statistics of difference graphs (Table II layout)",
        columns=[
            "Data",
            "Setting",
            "GD Type",
            "n",
            "m+",
            "m-",
            "Max w",
            "Min w",
            "Average w",
        ],
    )
    for entry in entries:
        table.add_row(dataset_stats_row(entry))
    return table


def positive_density_series(
    entries: Sequence[NamedDifferenceGraph],
) -> List[Tuple[str, float]]:
    """``m+/n`` per dataset — the x-axis of Fig. 2."""
    out = []
    for entry in entries:
        stats = entry.stats()
        label = f"{entry.data}/{entry.setting}/{entry.gd_type}"
        out.append((label, stats.positive_density))
    return out
