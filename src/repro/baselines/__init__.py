"""Comparison baselines: EgoScan [Cadena et al. 2016] and exact oracles."""

from repro.baselines.egoscan import EgoScanResult, ego_scan, scan_ego_net
from repro.baselines.heaviest import (
    exact_heaviest_subgraph,
    local_search_heaviest,
    marginal_weight,
)

__all__ = [
    "EgoScanResult",
    "ego_scan",
    "scan_ego_net",
    "exact_heaviest_subgraph",
    "local_search_heaviest",
    "marginal_weight",
]
