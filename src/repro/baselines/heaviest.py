"""Heaviest-subgraph primitives: ``max_S W_D(S)`` on signed graphs.

This is the objective of EgoScan [Cadena et al. 2016] — total edge
weight rather than density.  The module provides

* an exact exponential oracle (re-exported from :mod:`repro.core.exact`)
  for audits on small graphs, and
* a signed greedy local search used as a subroutine of the EgoScan
  substitute: starting from a seed set, repeatedly add any vertex whose
  marginal weight into the set is positive and drop any member whose
  marginal is negative, until a local optimum.

``W_D(S)`` follows the paper's total-degree convention (each edge
twice); local moves only ever compare weights, so the factor 2 never
changes a decision.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.exact import exact_heaviest_subgraph
from repro.graph.graph import Graph, Vertex

__all__ = [
    "exact_heaviest_subgraph",
    "marginal_weight",
    "local_search_heaviest",
]


def marginal_weight(graph: Graph, subset: Set[Vertex], vertex: Vertex) -> float:
    """Sum of edge weights from *vertex* into *subset* (vertex excluded)."""
    total = 0.0
    for neighbor, weight in graph.neighbors(vertex).items():
        if neighbor in subset and neighbor != vertex:
            total += weight
    return total


def local_search_heaviest(
    graph: Graph,
    seed: Iterable[Vertex],
    candidate_pool: Optional[Set[Vertex]] = None,
    max_passes: int = 50,
) -> Tuple[Set[Vertex], float]:
    """Greedy add/drop local search for ``max_S W_D(S)``.

    Parameters
    ----------
    graph:
        The signed difference graph.
    seed:
        Starting subset.
    candidate_pool:
        Vertices eligible for addition (default: whole graph).  EgoScan
        passes the ego net here; the final global polish passes None.
    max_passes:
        Each pass scans all candidates once; the search stops early at a
        local optimum.

    Returns ``(S, W_D(S))`` with the total-degree convention.
    """
    subset: Set[Vertex] = set(seed)
    pool = candidate_pool if candidate_pool is not None else graph.vertex_set()

    # Marginals of *pool* vertices w.r.t. the current subset, maintained
    # incrementally: flipping `v` updates only its neighbours.
    marginals: Dict[Vertex, float] = {
        v: marginal_weight(graph, subset, v) for v in pool | subset
    }

    def flip(vertex: Vertex, joined: bool) -> None:
        sign = 1.0 if joined else -1.0
        for neighbor, weight in graph.neighbors(vertex).items():
            if neighbor in marginals:
                marginals[neighbor] += sign * weight

    for _ in range(max_passes):
        changed = False
        for vertex in list(marginals):
            gain = marginals[vertex]
            if vertex in subset:
                if gain < 0.0:
                    subset.discard(vertex)
                    flip(vertex, joined=False)
                    changed = True
            elif vertex in pool and gain > 0.0:
                subset.add(vertex)
                flip(vertex, joined=True)
                changed = True
        if not changed:
            break

    if not subset:
        # All-negative neighbourhoods: fall back to the best single seed.
        best = max(pool, key=lambda v: graph.degree(v), default=None)
        if best is None:
            raise ValueError("empty candidate pool")
        subset = {best}
    return subset, graph.total_degree(subset)
