"""EgoScan substitute — the paper's closest-work baseline [6].

Cadena et al. maximise the **total edge weight** ``W_D(S)`` of a signed
difference graph by scanning the ego net of every vertex with a
semidefinite-programming relaxation and rounding.  No SDP solver is
available in this offline environment, so this module substitutes the
SDP with:

1. a **spectral relaxation** per ego net — power iteration on the
   (shifted) ego-net affinity matrix, followed by a sweep over prefixes
   of the eigenvector ordering; and
2. a **signed greedy local search**
   (:func:`repro.baselines.heaviest.local_search_heaviest`) polishing the
   sweep solution inside the ego net, with a final global polish of the
   best candidate.

The substitution preserves what the paper measures: identical objective
(``max W_D(S)``), identical search space (ego-net seeded subgraphs), and
the qualitative behaviour of Tables VIII/IX — EgoScan returns much
larger, non-clique subgraphs with higher total-weight difference and far
lower density difference than the DCS algorithms.  It is also, like the
original, by far the slowest baseline (every vertex's ego net is scanned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.heaviest import local_search_heaviest, marginal_weight
from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class EgoScanResult:
    """Best subgraph found by the ego-net scan.

    ``total_weight`` is ``W_D(S)`` with the paper's total-degree
    convention (each edge counted twice), the same quantity Table IX
    reports.
    """

    subset: Set[Vertex]
    total_weight: float
    seed: Optional[Vertex]
    seeds_scanned: int


def _power_iteration(
    graph: Graph,
    members: List[Vertex],
    iterations: int = 60,
) -> Dict[Vertex, float]:
    """Leading eigenvector of the ego-net affinity matrix (dict-based).

    The matrix is shifted by its max absolute row sum so the dominant
    eigenvalue is nonnegative and the iteration cannot oscillate between
    signs (the signed ego matrix may have a dominant negative eigenvalue).
    """
    member_set = set(members)
    shift = 0.0
    for u in members:
        row_sum = sum(
            abs(weight)
            for v, weight in graph.neighbors(u).items()
            if v in member_set
        )
        shift = max(shift, row_sum)
    size = len(members)
    vector = {u: 1.0 / size for u in members}
    for _ in range(iterations):
        result: Dict[Vertex, float] = {}
        for u in members:
            total = shift * vector[u]
            for v, weight in graph.neighbors(u).items():
                if v in member_set:
                    total += weight * vector[v]
            result[u] = total
        norm = max(abs(value) for value in result.values())
        if norm <= 0.0:
            return vector
        vector = {u: value / norm for u, value in result.items()}
    return vector


def _sweep(graph: Graph, ordering: Sequence[Vertex]) -> Tuple[Set[Vertex], float]:
    """Best prefix of *ordering* by induced total weight.

    Incremental: appending ``v`` adds its marginal into the prefix.
    Returns the best nonempty prefix (single vertices weigh 0).
    """
    best_weight = 0.0
    best_size = 1
    prefix: Set[Vertex] = set()
    weight = 0.0
    for index, vertex in enumerate(ordering, start=1):
        weight += marginal_weight(graph, prefix, vertex)
        prefix.add(vertex)
        if weight > best_weight:
            best_weight = weight
            best_size = index
    return set(ordering[:best_size]), 2.0 * best_weight


def scan_ego_net(graph: Graph, seed: Vertex) -> Tuple[Set[Vertex], float]:
    """Spectral sweep + local search inside the ego net of *seed*."""
    neighbors = graph.neighbors(seed)
    members = [seed] + list(neighbors)
    if len(members) == 1:
        return {seed}, 0.0
    vector = _power_iteration(graph, members)
    ordering = sorted(members, key=lambda u: -vector[u])
    swept, _ = _sweep(graph, ordering)
    subset, total = local_search_heaviest(
        graph, swept, candidate_pool=set(members)
    )
    return subset, total


def ego_scan(
    graph: Graph,
    seeds: Optional[Sequence[Vertex]] = None,
    max_seeds: Optional[int] = None,
    global_polish: bool = True,
) -> EgoScanResult:
    """Scan ego nets of *seeds* (default: all vertices, highest degree first).

    *max_seeds* caps the scan for large graphs — the paper itself could
    not run EgoScan past the DBLP-sized inputs ("either EgoScan could not
    finish running in one day or the memory ... was not enough").

    With *global_polish*, the best ego solution is refined once more with
    the whole graph as the candidate pool, mirroring EgoScan's final
    aggregation step.
    """
    if graph.num_vertices == 0:
        raise ValueError("empty graph")
    if seeds is None:
        pool = sorted(
            graph.vertices(),
            key=lambda u: (-graph.unweighted_degree(u), repr(u)),
        )
    else:
        pool = list(seeds)
    if max_seeds is not None:
        pool = pool[:max_seeds]

    best_subset: Set[Vertex] = {pool[0]} if pool else set()
    best_weight = 0.0
    best_seed: Optional[Vertex] = None
    for seed in pool:
        subset, weight = scan_ego_net(graph, seed)
        if weight > best_weight:
            best_subset, best_weight, best_seed = subset, weight, seed

    if global_polish and best_subset:
        polished, weight = local_search_heaviest(graph, best_subset)
        if weight > best_weight:
            best_subset, best_weight = polished, weight

    return EgoScanResult(
        subset=best_subset,
        total_weight=best_weight,
        seed=best_seed,
        seeds_scanned=len(pool),
    )
