"""Synthetic Douban-style social + interest data (Tables XII, XIII, Fig 3).

The paper builds, from the Douban social network and user ratings:

* ``G1`` — the social graph (unit weights);
* ``G2`` — an *interest similarity* graph: an edge between users within
  two hops of each other in ``G1`` whose Jaccard similarity of rated
  items exceeds a threshold (0.2 for movies, 0.1 for books); unit
  weights.

This generator follows the same recipe end to end: it synthesises a
community-structured social graph and per-user rating sets, then derives
the interest graphs with the paper's thresholds.  Structural features
matched to the paper's Table II / XII / XIII:

* both interest graphs are **sparser** than the social graph (the
  Interest-Social difference graphs have ``m+ << m-``), books sparser
  than movies;
* **movies**: planted within-community taste groups with very focused
  rating pools — most of their pairs have no direct social edge but are
  within 2 hops, so the movie Interest-Social graph contains dense
  positive near-cliques (the paper's 32-user, 0.969-affinity DCS);
* **books**: smaller/weaker planted groups (the 14-user DCS);
* one planted **social clique** of users with deliberately diverse
  tastes — the positive clique that Social-Interest mining finds (the
  paper's 18/22-user DCS).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph


@dataclass
class DoubanDataset:
    """Social graph, both interest graphs, and the planted ground truth."""

    social: Graph
    movie_interest: Graph
    book_interest: Graph
    movie_ratings: Dict[str, Set[int]] = field(repr=False, default_factory=dict)
    book_ratings: Dict[str, Set[int]] = field(repr=False, default_factory=dict)
    communities: List[List[str]] = field(default_factory=list)
    movie_taste_groups: List[Set[str]] = field(default_factory=list)
    book_taste_groups: List[Set[str]] = field(default_factory=list)
    social_clique: Set[str] = field(default_factory=set)

    def gd(self, interest: str, gd_type: str) -> Graph:
        """A difference graph by paper naming.

        *interest* is ``"movie"`` or ``"book"``; *gd_type* is
        ``"interest-social"`` (``G2 - G1``) or ``"social-interest"``.
        """
        from repro.core.difference import difference_graph

        interest_graph = (
            self.movie_interest if interest == "movie" else self.book_interest
        )
        if gd_type == "interest-social":
            return difference_graph(self.social, interest_graph)
        if gd_type == "social-interest":
            return difference_graph(interest_graph, self.social)
        raise ValueError(f"unknown gd_type {gd_type!r}")


def _user(index: int) -> str:
    return f"user{index:05d}"


def jaccard(a: Set[int], b: Set[int]) -> float:
    """Jaccard similarity of two item sets (0 when both empty)."""
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


def two_hop_pairs(graph: Graph) -> Set[Tuple[str, str]]:
    """Unordered vertex pairs within 2 hops of each other.

    The paper computes interest similarity only for such pairs; this
    keeps the interest graph sparse and computable.
    """
    pairs: Set[Tuple[str, str]] = set()
    for u in graph.vertices():
        neighbors = list(graph.neighbors(u))
        for v in neighbors:
            if repr(u) < repr(v):
                pairs.add((u, v))
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1 :]:
                if a != b:
                    pair = (a, b) if repr(a) < repr(b) else (b, a)
                    pairs.add(pair)
    return pairs


def interest_graph(
    social: Graph,
    ratings: Dict[str, Set[int]],
    threshold: float,
) -> Graph:
    """The paper's interest-similarity graph (unit weights)."""
    graph = Graph()
    graph.add_vertices(social.vertices())
    for u, v in two_hop_pairs(social):
        if jaccard(ratings.get(u, set()), ratings.get(v, set())) > threshold:
            graph.add_edge(u, v, 1.0)
    return graph


def _sample_ratings(
    users: Sequence[str],
    pools: Dict[str, Tuple[List[int], float]],
    items_per_user: Tuple[int, int],
    n_items: int,
    rng: random.Random,
) -> Dict[str, Set[int]]:
    """Rating sets; ``pools[user] = (item_pool, focus)`` when grouped."""
    ratings: Dict[str, Set[int]] = {}
    for user in users:
        count = rng.randint(*items_per_user)
        items: Set[int] = set()
        pool_entry = pools.get(user)
        for _ in range(count):
            if pool_entry is not None and rng.random() < pool_entry[1]:
                items.add(rng.choice(pool_entry[0]))
            else:
                items.add(rng.randrange(n_items))
        ratings[user] = items
    return ratings


def douban_network(
    n_users: int = 900,
    n_communities: int = 30,
    p_in: float = 0.25,
    p_out: float = 0.003,
    n_movies: int = 2500,
    n_books: int = 4000,
    movie_items_per_user: Tuple[int, int] = (50, 90),
    book_items_per_user: Tuple[int, int] = (20, 40),
    n_movie_groups: Optional[int] = None,
    n_book_groups: Optional[int] = None,
    social_clique_size: int = 16,
    seed: int = 0,
) -> DoubanDataset:
    """Generate the full Douban-style dataset (see module docstring).

    Planted group counts default to one per ten communities so scaled-
    down instances keep the full-scale density proportions (the movie
    interest graph must stay sparser than the social graph, as in the
    paper's Table II).
    """
    rng = random.Random(seed)
    if n_movie_groups is None:
        n_movie_groups = max(1, n_communities // 10)
    if n_book_groups is None:
        n_book_groups = max(1, n_communities // 10)
    users = [_user(i) for i in range(n_users)]

    # Social graph: planted partition over round-robin communities.
    communities: List[List[str]] = [[] for _ in range(n_communities)]
    for index, user in enumerate(users):
        communities[index % n_communities].append(user)
    social = Graph()
    social.add_vertices(users)
    community_of = {
        user: cid for cid, members in enumerate(communities) for user in members
    }
    for i, u in enumerate(users):
        for v in users[i + 1 :]:
            p = p_in if community_of[u] == community_of[v] else p_out
            if rng.random() < p:
                social.add_edge(u, v, 1.0)

    # --- planted structures -------------------------------------------
    needed = n_movie_groups + n_book_groups + 1
    if n_communities < needed:
        raise ValueError(
            f"need at least {needed} communities to plant all groups"
        )
    community_ids = list(range(n_communities))
    rng.shuffle(community_ids)
    cursor = 0

    def next_community() -> List[str]:
        nonlocal cursor
        members = communities[community_ids[cursor]]
        cursor += 1
        return members

    # Movie taste groups: one community each, reorganised around two
    # social "hubs" joined to everyone (so every pair stays within 2
    # hops) while direct friendships *inside* the taste group are rare —
    # a taste cluster that is not a friendship cluster.  Their extremely
    # focused pools then yield a dense positive near-clique in the movie
    # Interest-Social difference graph.
    movie_pools: Dict[str, Tuple[List[int], float]] = {}
    movie_taste_groups: List[Set[str]] = []
    for _ in range(n_movie_groups):
        community = next_community()
        hubs = community[:2]
        members = community[2:]
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if social.has_edge(u, v) and rng.random() < 0.95:
                    social.remove_edge(u, v)
        for hub in hubs:
            for user in community:
                if user != hub:
                    social.add_edge(hub, user, 1.0)
        pool = rng.sample(range(n_movies), 50)
        for user in members:
            movie_pools[user] = (pool, 0.95)
        movie_taste_groups.append(set(members))

    # Book taste groups: smaller and slightly weaker.
    book_pools: Dict[str, Tuple[List[int], float]] = {}
    book_taste_groups: List[Set[str]] = []
    for _ in range(n_book_groups):
        community = next_community()
        size = max(4, int(len(community) * 0.45))
        members = rng.sample(community, min(size, len(community)))
        pool = rng.sample(range(n_books), 25)
        for user in members:
            book_pools[user] = (pool, 0.85)
        book_taste_groups.append(set(members))

    # Social clique: tightly knit users with deliberately diverse tastes
    # (they stay out of any taste group) — the Social-Interest target.
    clique_home = next_community()
    clique = rng.sample(clique_home, min(social_clique_size, len(clique_home)))
    for i, u in enumerate(clique):
        for v in clique[i + 1 :]:
            social.add_edge(u, v, 1.0)

    # Mild background taste groups (below the Jaccard thresholds on
    # average) so the interest graphs are not empty outside the plants.
    for cid in range(0, n_communities - 1, 2):
        pool = rng.sample(range(n_movies), 60)
        for user in communities[cid]:
            movie_pools.setdefault(user, (pool, 0.55))
    for cid in range(n_communities):
        pool = rng.sample(range(n_books), 40)
        sampled = rng.sample(
            communities[cid], max(2, len(communities[cid]) // 3)
        )
        for user in sampled:
            book_pools.setdefault(user, (pool, 0.3))

    movie_ratings = _sample_ratings(
        users, movie_pools, movie_items_per_user, n_movies, rng
    )
    book_ratings = _sample_ratings(
        users, book_pools, book_items_per_user, n_books, rng
    )

    movie = interest_graph(social, movie_ratings, threshold=0.2)
    book = interest_graph(social, book_ratings, threshold=0.1)

    return DoubanDataset(
        social=social,
        movie_interest=movie,
        book_interest=book,
        movie_ratings=movie_ratings,
        book_ratings=book_ratings,
        communities=communities,
        movie_taste_groups=movie_taste_groups,
        book_taste_groups=book_taste_groups,
        social_clique=set(clique),
    )
