"""Synthetic datasets substituting the paper's offline-unavailable data.

Each generator reproduces the *structure* the corresponding experiment
exercises (see DESIGN.md section 3 for the substitution rationale):

* :mod:`~repro.datasets.synthetic_dblp` — DBLP / DBLP-C co-author
  snapshots with planted emerging/disappearing groups;
* :mod:`~repro.datasets.synthetic_text` — DM paper-title corpus and
  keyword association graphs;
* :mod:`~repro.datasets.synthetic_wiki` — Wikipedia editor interactions;
* :mod:`~repro.datasets.synthetic_douban` — Douban social + ratings;
* :mod:`~repro.datasets.synthetic_actor` — Actor collaborations;
* :mod:`~repro.datasets.registry` — the 16 Table II rows by name;
* :mod:`~repro.datasets.temporal` — snapshot streams with planted
  contrast bursts (for :class:`~repro.core.monitor.ContrastMonitor`);
* :mod:`~repro.datasets.streaming` — the event-native burst workloads
  (for :class:`~repro.stream.engine.StreamingDCSEngine`).
"""

from repro.datasets.registry import BUILDERS, build_all
from repro.datasets.synthetic_actor import ActorDataset, actor_network
from repro.datasets.synthetic_dblp import (
    CoauthorDataset,
    coauthor_snapshots,
    dblp_c_snapshots,
)
from repro.datasets.synthetic_douban import (
    DoubanDataset,
    douban_network,
    interest_graph,
    jaccard,
    two_hop_pairs,
)
from repro.datasets.synthetic_text import (
    DEFAULT_TOPICS,
    TextDataset,
    association_graph,
    keyword_corpus,
)
from repro.datasets.streaming import EventStream, burst_event_stream
from repro.datasets.synthetic_wiki import WikiDataset, wiki_interactions
from repro.datasets.temporal import TemporalStream, snapshot_stream

__all__ = [
    "BUILDERS",
    "build_all",
    "ActorDataset",
    "actor_network",
    "CoauthorDataset",
    "coauthor_snapshots",
    "dblp_c_snapshots",
    "DoubanDataset",
    "douban_network",
    "interest_graph",
    "jaccard",
    "two_hop_pairs",
    "DEFAULT_TOPICS",
    "TextDataset",
    "association_graph",
    "keyword_corpus",
    "WikiDataset",
    "wiki_interactions",
    "TemporalStream",
    "snapshot_stream",
    "EventStream",
    "burst_event_stream",
]
