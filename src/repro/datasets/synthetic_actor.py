"""Synthetic actor collaboration network (Actor substitute).

The paper's Actor dataset is a single collaboration network with
positive integer weights (number of joint movies), used **directly as a
difference graph** — Section V-C notes the DCSGA solvers are competitive
for plain graph-affinity maximisation, and Table II shows the Actor
rows with ``m- = 0``.

Structural features reproduced:

* heavy-tailed collaboration counts (max weight in the hundreds) with a
  couple of extremely prolific duos/trios — the Weighted-setting DCSGA
  finds one of those tiny groups (Table XIV: 3 users, affinity 108.25);
* several mid-size ensembles with moderate per-pair counts — after the
  Discrete capping (weights clipped at 10), one of these becomes the
  DCSGA answer instead (Table XIV: 21 users).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Set

from repro.graph.generators import chung_lu_graph, powerlaw_degree_sequence
from repro.graph.graph import Graph


@dataclass
class ActorDataset:
    """Collaboration network plus planted ensembles."""

    graph: Graph
    prolific_trio: Set[str] = field(default_factory=set)
    ensembles: List[Set[str]] = field(default_factory=list)

    def weighted_gd(self) -> Graph:
        """The Weighted setting: the network as-is."""
        return self.graph

    def discrete_gd(self, cap: float = 10.0) -> Graph:
        """The Discrete setting: weights above *cap* clipped to *cap*."""
        from repro.core.difference import cap_weights

        return cap_weights(self.graph, cap)


def _actor(index: int) -> str:
    return f"actor{index:05d}"


def actor_network(
    n_actors: int = 2000,
    background_mean_degree: float = 8.0,
    n_ensembles: int = 4,
    ensemble_size_range: tuple = (15, 25),
    trio_weight: float = 110.0,
    seed: int = 0,
) -> ActorDataset:
    """Generate the collaboration network.

    Background collaborations follow a Chung-Lu topology with geometric
    weights (most pairs collaborate once or twice).  Planted structure:
    one trio with ``trio_weight`` joint movies per pair, and
    *n_ensembles* cliques with per-pair counts drawn from [8, 20] — heavy
    enough to win after capping, small enough to lose to the trio before.
    """
    rng = random.Random(seed)
    actors = [_actor(i) for i in range(n_actors)]
    graph = Graph()
    graph.add_vertices(actors)

    degrees = powerlaw_degree_sequence(
        n_actors,
        exponent=2.2,
        min_degree=background_mean_degree / 2.0,
        seed=rng.randrange(1 << 30),
    )

    def geometric_weight(r: random.Random) -> float:
        weight = 1
        while r.random() < 0.45 and weight < 60:
            weight += 1
        return float(weight)

    base = chung_lu_graph(
        degrees, seed=rng.randrange(1 << 30), weight=geometric_weight
    )
    for u, v, weight in base.edges():
        graph.add_edge(actors[u], actors[v], weight)

    shuffled = actors[:]
    rng.shuffle(shuffled)
    cursor = 0

    def take(count: int) -> List[str]:
        nonlocal cursor
        group = shuffled[cursor : cursor + count]
        cursor += count
        return group

    trio = take(3)
    for i, u in enumerate(trio):
        for v in trio[i + 1 :]:
            graph.add_edge(u, v, trio_weight + rng.uniform(-10.0, 10.0))

    ensembles: List[Set[str]] = []
    for _ in range(n_ensembles):
        size = rng.randint(*ensemble_size_range)
        members = take(size)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v, float(rng.randint(8, 20)))
        ensembles.append(set(members))

    return ActorDataset(
        graph=graph,
        prolific_trio=set(trio),
        ensembles=ensembles,
    )
