"""Synthetic paper-title corpus and keyword association graphs (DM data).

Tables V and VI mine emerging/disappearing research topics from two
keyword association graphs built over data-mining paper titles
(1998-2007 vs 2008-2017).  The real titles are not available offline, so
this generator produces a corpus with the same machinery:

* a **topic model**: each topic is a small keyword set with an
  era-dependent popularity (rising, declining, or stable);
* titles sample one topic (keywords included with high probability) plus
  Zipfian background words;
* the association graphs use the paper's own edge weights — 100 times
  the fraction of titles containing both keywords (Section VI-C, after
  [Angel et al. 2012]).

Named topics mirror the paper's findings ("social networks" rising,
"association rules" declining, "time series" stable-hot in both eras) so
the reproduced Tables V/VI read like the originals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.graph import Graph

#: (keywords, era1 popularity weight, era2 popularity weight)
TopicSpec = Tuple[Tuple[str, ...], float, float]

#: Topics used by default; popularities echo the paper's narrative.
DEFAULT_TOPICS: Tuple[TopicSpec, ...] = (
    # Emerging: hot almost only in era 2.
    (("social", "networks"), 0.5, 10.0),
    (("large", "scale"), 0.4, 7.0),
    (("matrix", "factorization"), 0.3, 6.0),
    (("semi", "supervised", "learning"), 0.3, 5.0),
    (("unsupervised", "feature", "selection"), 0.2, 4.0),
    # Disappearing: hot almost only in era 1.
    (("mining", "association", "rules"), 10.0, 0.5),
    (("knowledge", "discovery"), 7.0, 0.6),
    (("support", "vector", "machines"), 6.0, 0.8),
    (("inductive", "logic", "programming"), 5.0, 0.2),
    (("intrusion", "detection"), 4.0, 0.3),
    # Stable / cooling-slightly: hot in both (the "time series" trap that
    # single-graph mining falls into).
    (("time", "series"), 11.0, 9.0),
    (("feature", "selection"), 8.0, 7.0),
    (("decision", "trees"), 6.0, 3.5),
    (("nearest", "neighbor"), 5.0, 3.0),
    (("clustering", "algorithms"), 4.0, 4.0),
)


@dataclass
class TextDataset:
    """Two keyword association graphs plus the generating topic model."""

    g1: Graph
    g2: Graph
    titles1: List[List[str]] = field(repr=False, default_factory=list)
    titles2: List[List[str]] = field(repr=False, default_factory=list)
    emerging_topics: List[Set[str]] = field(default_factory=list)
    disappearing_topics: List[Set[str]] = field(default_factory=list)
    stable_topics: List[Set[str]] = field(default_factory=list)

    @property
    def vocabulary(self) -> Set[str]:
        return self.g1.vertex_set()


def _zipf_sampler(words: Sequence[str], rng: random.Random):
    """Closed-over sampler with P(word_i) proportional to 1/(i+1)."""
    weights = [1.0 / (rank + 1) for rank in range(len(words))]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def sample() -> str:
        roll = rng.random()
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < roll:
                low = mid + 1
            else:
                high = mid
        return words[low]

    return sample


def association_graph(
    titles: Sequence[Sequence[str]], vocabulary: Sequence[str]
) -> Graph:
    """Keyword association graph: weight = 100 * co-occurrence fraction.

    Exactly the paper's construction: "for an edge between two keywords,
    we set its weight as 100 times the percentage of paper titles
    containing both the keywords" (with *percentage* read as fraction —
    the constant only rescales both graphs and drops out of contrasts).
    """
    graph = Graph()
    graph.add_vertices(vocabulary)
    if not titles:
        return graph
    pair_counts: Dict[Tuple[str, str], int] = {}
    for title in titles:
        unique = sorted(set(title))
        for i, u in enumerate(unique):
            for v in unique[i + 1 :]:
                pair_counts[(u, v)] = pair_counts.get((u, v), 0) + 1
    scale = 100.0 / len(titles)
    for (u, v), count in pair_counts.items():
        graph.add_edge(u, v, count * scale)
    return graph


def keyword_corpus(
    n_titles_per_era: int = 3000,
    n_background_words: int = 300,
    topics: Sequence[TopicSpec] = DEFAULT_TOPICS,
    topic_keyword_probability: float = 0.9,
    background_words_per_title: int = 4,
    era2_growth: float = 1.5,
    seed: int = 0,
) -> TextDataset:
    """Generate the corpus and both association graphs.

    Each title: pick a topic by its era popularity, include each of its
    keywords independently with *topic_keyword_probability*, then append
    Zipfian background words.  Titles therefore co-locate topic keywords
    far more often than random pairs, giving topics high affinity in
    their hot era — and near-zero in the cold era.

    *era2_growth* scales the number of era-2 titles (the field grew), so
    the recent graph touches more distinct keyword pairs and the
    difference graph has ``m+ > m-``, matching the paper's DM rows.
    """
    rng = random.Random(seed)
    background = [f"word{i:04d}" for i in range(n_background_words)]
    sample_background = _zipf_sampler(background, rng)

    vocabulary: Set[str] = set(background)
    for keywords, _, _ in topics:
        vocabulary.update(keywords)

    def era_titles(era_index: int) -> List[List[str]]:
        popularity = [spec[1 + era_index] for spec in topics]
        total = sum(popularity)
        count = n_titles_per_era
        if era_index == 1:
            count = int(round(n_titles_per_era * era2_growth))
        titles: List[List[str]] = []
        for _ in range(count):
            roll = rng.random() * total
            acc = 0.0
            chosen = topics[-1]
            for spec, weight in zip(topics, popularity):
                acc += weight
                if roll <= acc:
                    chosen = spec
                    break
            title = [
                word
                for word in chosen[0]
                if rng.random() < topic_keyword_probability
            ]
            for _ in range(rng.randint(1, background_words_per_title)):
                title.append(sample_background())
            titles.append(title)
        return titles

    titles1 = era_titles(0)
    titles2 = era_titles(1)
    ordered_vocabulary = sorted(vocabulary)
    g1 = association_graph(titles1, ordered_vocabulary)
    g2 = association_graph(titles2, ordered_vocabulary)

    emerging, disappearing, stable = [], [], []
    for keywords, pop1, pop2 in topics:
        topic = set(keywords)
        if pop2 >= 3.0 * pop1:
            emerging.append(topic)
        elif pop1 >= 3.0 * pop2:
            disappearing.append(topic)
        else:
            stable.append(topic)

    return TextDataset(
        g1=g1,
        g2=g2,
        titles1=titles1,
        titles2=titles2,
        emerging_topics=emerging,
        disappearing_topics=disappearing,
        stable_topics=stable,
    )
