"""Planted-burst *event* workloads for the streaming DCS engine.

The event-native sibling of :mod:`repro.datasets.temporal`: instead of
re-materialising every snapshot, the generator emits the
:class:`~repro.stream.events.EdgeEvent` stream a live network would —
a full observation of the base topology at step 0, sparse noisy
re-observations afterwards (most of the network is *quiet* most of the
time), and a planted cluster whose pairwise strengths surge during a
chosen interval and return to baseline afterwards.

That sparsity is the point: per step only a small fraction of edges
carries an event, so the incremental engine's per-step work is tiny
while a naive snapshot recompute still pays ``O(window * m)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.graph.generators import gnp_graph
from repro.graph.graph import Graph
from repro.stream.events import EdgeEvent, EventLog


@dataclass
class EventStream:
    """An event workload plus its anomaly ground truth."""

    log: EventLog = field(repr=False)
    universe: List[str]
    n_steps: int
    anomaly_members: Set[str] = field(default_factory=set)
    anomaly_start: int = 0
    anomaly_end: int = 0  # exclusive

    @property
    def n_events(self) -> int:
        return len(self.log.events)

    def is_anomalous_step(self, step: int) -> bool:
        """Whether the anomaly is active at *step*."""
        return self.anomaly_start <= step < self.anomaly_end

    def snapshots(self) -> List[Graph]:
        """Replay the events into per-step snapshot graphs (O(steps * m)).

        The materialised equivalent of the stream — what a snapshot
        consumer (:class:`repro.core.monitor.ContrastMonitor`) would
        see.  Used by parity tests; the engine never needs this.
        """
        state = Graph()
        state.add_vertices(self.universe)
        grouped: dict = {}
        for event in self.log.events:
            grouped.setdefault(event.t, []).append(event)
        result: List[Graph] = []
        for step in range(self.n_steps):
            for event in grouped.get(step, ()):
                state.add_edge(event.u, event.v, event.w)
            result.append(state.copy())
        return result


def _vertex(index: int) -> str:
    return f"node{index:04d}"


def burst_event_stream(
    n_vertices: int = 120,
    n_steps: int = 30,
    base_p: float = 0.06,
    reobserve_p: float = 0.02,
    noise: float = 0.25,
    anomaly_size: int = 6,
    anomaly_start: int = 12,
    anomaly_duration: int = 3,
    anomaly_boost: Tuple[float, float] = (3.0, 5.0),
    seed: int = 0,
) -> EventStream:
    """Generate the planted-burst event workload.

    Step 0 observes every base edge at its baseline strength.  At each
    later step every base edge is independently re-observed with
    probability *reobserve_p* at ``baseline + U(-noise, noise)``
    (floored at 0.1) — background churn.  During
    ``[anomaly_start, anomaly_start + anomaly_duration)`` every internal
    pair of the anomaly cluster is observed at
    ``baseline + U(*anomaly_boost)`` (re-drawn per step), and at the
    step after the burst ends each pair is observed back at its
    baseline — so the anomaly is a transient surge, exactly the
    "emerging traffic hotspot" of the paper's introduction.
    """
    if anomaly_size > n_vertices:
        raise ValueError("anomaly cannot exceed the vertex count")
    anomaly_end = anomaly_start + anomaly_duration
    if anomaly_end >= n_steps:
        raise ValueError("the burst (plus its reset step) must end within the stream")
    rng = random.Random(seed)
    names = [_vertex(i) for i in range(n_vertices)]
    base_numeric = gnp_graph(
        n_vertices,
        base_p,
        seed=rng.randrange(1 << 30),
        weight=lambda r: r.uniform(0.5, 2.5),
    )
    base = Graph()
    base.add_vertices(names)
    for u, v, weight in base_numeric.edges():
        base.add_edge(names[u], names[v], weight)
    base_edges = sorted(
        ((min(u, v), max(u, v), w) for u, v, w in base.edges()),
    )

    members = set(rng.sample(names, anomaly_size))
    ordered_members = sorted(members)

    events: List[EdgeEvent] = []
    for u, v, weight in base_edges:
        events.append(EdgeEvent(t=0, u=u, v=v, w=weight))
    for step in range(1, n_steps):
        for u, v, weight in base_edges:
            if rng.random() < reobserve_p:
                observed = max(0.1, weight + rng.uniform(-noise, noise))
                events.append(EdgeEvent(t=step, u=u, v=v, w=observed))
        if anomaly_start <= step < anomaly_end:
            for i, u in enumerate(ordered_members):
                for v in ordered_members[i + 1 :]:
                    surged = base.weight(u, v) + rng.uniform(*anomaly_boost)
                    events.append(EdgeEvent(t=step, u=u, v=v, w=surged))
        elif step == anomaly_end:
            # The surge subsides: every cluster pair is re-observed at
            # its baseline (0 deletes pairs that had no base edge).
            for i, u in enumerate(ordered_members):
                for v in ordered_members[i + 1 :]:
                    events.append(EdgeEvent(t=step, u=u, v=v, w=base.weight(u, v)))

    log = EventLog(events=events, declared=set(names))
    return EventStream(
        log=log,
        universe=names,
        n_steps=n_steps,
        anomaly_members=members,
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
    )
