"""Dataset registry: the 16 Table II difference graphs by name.

Each entry of the paper's Table II is a (Data, Setting, GD Type) triple.
:func:`build_all` regenerates the full collection from the synthetic
generators at a chosen *scale* (1.0 = the library's default bench sizes;
the paper's raw datasets are orders of magnitude larger — see DESIGN.md
for the substitution rationale).

The registry caches nothing; benches that need several views of one
dataset should call the underlying builders directly.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.stats import NamedDifferenceGraph
from repro.core.difference import (
    DBLP_DISCRETE,
    difference_graph,
    discrete_difference_graph,
    flip,
)
from repro.datasets.synthetic_actor import actor_network
from repro.datasets.synthetic_dblp import coauthor_snapshots, dblp_c_snapshots
from repro.datasets.synthetic_douban import douban_network
from repro.datasets.synthetic_text import keyword_corpus
from repro.datasets.synthetic_wiki import wiki_interactions


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def dblp_entries(scale: float = 1.0, seed: int = 0) -> List[NamedDifferenceGraph]:
    """DBLP rows: Weighted/Discrete x Emerging/Disappearing."""
    dataset = coauthor_snapshots(
        n_authors=_scaled(800, scale, 120),
        n_communities=_scaled(40, scale, 8),
        seed=seed,
    )
    weighted = difference_graph(dataset.g1, dataset.g2)
    discrete = discrete_difference_graph(dataset.g1, dataset.g2, DBLP_DISCRETE)
    return [
        NamedDifferenceGraph("DBLP", "Weighted", "Emerging", weighted),
        NamedDifferenceGraph("DBLP", "Weighted", "Disappearing", flip(weighted)),
        NamedDifferenceGraph("DBLP", "Discrete", "Emerging", discrete),
        NamedDifferenceGraph("DBLP", "Discrete", "Disappearing", flip(discrete)),
    ]


def dm_entries(scale: float = 1.0, seed: int = 1) -> List[NamedDifferenceGraph]:
    """DM keyword-graph rows: Emerging/Disappearing."""
    dataset = keyword_corpus(
        n_titles_per_era=_scaled(3000, scale, 400),
        n_background_words=_scaled(300, scale, 60),
        seed=seed,
    )
    emerging = difference_graph(dataset.g1, dataset.g2)
    return [
        NamedDifferenceGraph("DM", "-", "Emerging", emerging),
        NamedDifferenceGraph("DM", "-", "Disappearing", flip(emerging)),
    ]


def wiki_entries(scale: float = 1.0, seed: int = 2) -> List[NamedDifferenceGraph]:
    """Wiki rows: Consistent/Conflicting."""
    dataset = wiki_interactions(
        n_editors=_scaled(1500, scale, 200),
        blob_size=_scaled(180, scale, 30),
        seed=seed,
    )
    return [
        NamedDifferenceGraph("Wiki", "-", "Consistent", dataset.consistent_gd()),
        NamedDifferenceGraph("Wiki", "-", "Conflicting", dataset.conflicting_gd()),
    ]


def douban_entries(scale: float = 1.0, seed: int = 3) -> List[NamedDifferenceGraph]:
    """Movie/Book rows: Interest-Social / Social-Interest."""
    dataset = douban_network(
        n_users=_scaled(900, scale, 150),
        n_communities=_scaled(30, scale, 6),
        seed=seed,
    )
    return [
        NamedDifferenceGraph(
            "Movie", "-", "Interest-Social", dataset.gd("movie", "interest-social")
        ),
        NamedDifferenceGraph(
            "Movie", "-", "Social-Interest", dataset.gd("movie", "social-interest")
        ),
        NamedDifferenceGraph(
            "Book", "-", "Interest-Social", dataset.gd("book", "interest-social")
        ),
        NamedDifferenceGraph(
            "Book", "-", "Social-Interest", dataset.gd("book", "social-interest")
        ),
    ]


def dblp_c_entries(scale: float = 1.0, seed: int = 4) -> List[NamedDifferenceGraph]:
    """DBLP-C rows: Weighted/Discrete."""
    dataset = dblp_c_snapshots(
        n_authors=_scaled(4000, scale, 400),
        n_communities=_scaled(160, scale, 20),
        seed=seed,
    )
    weighted = difference_graph(dataset.g1, dataset.g2)
    discrete = discrete_difference_graph(dataset.g1, dataset.g2, DBLP_DISCRETE)
    return [
        NamedDifferenceGraph("DBLP-C", "Weighted", "-", weighted),
        NamedDifferenceGraph("DBLP-C", "Discrete", "-", discrete),
    ]


def actor_entries(scale: float = 1.0, seed: int = 5) -> List[NamedDifferenceGraph]:
    """Actor rows: Weighted/Discrete (positive-only difference graphs)."""
    dataset = actor_network(n_actors=_scaled(2000, scale, 250), seed=seed)
    return [
        NamedDifferenceGraph("Actor", "Weighted", "-", dataset.weighted_gd()),
        NamedDifferenceGraph("Actor", "Discrete", "-", dataset.discrete_gd()),
    ]


#: Name -> builder for each dataset family.
BUILDERS: Dict[str, Callable[..., List[NamedDifferenceGraph]]] = {
    "DBLP": dblp_entries,
    "DM": dm_entries,
    "Wiki": wiki_entries,
    "Douban": douban_entries,
    "DBLP-C": dblp_c_entries,
    "Actor": actor_entries,
}


def entry_name(entry: NamedDifferenceGraph) -> str:
    """Canonical ``Data/Setting/GDType`` name of a Table II row.

    This is the dataset-reference vocabulary of the batch layer: a
    query's ``{"dataset": "DBLP/Weighted/Emerging"}`` resolves through
    :func:`build_named`.
    """
    return f"{entry.data}/{entry.setting}/{entry.gd_type}"


@functools.lru_cache(maxsize=1)
def _name_index() -> Dict[str, str]:
    """``Data/Setting/GDType`` name -> builder family, one source of
    truth: enumerated from the builders themselves at minimum scale, so
    adding a family (or a row) needs no second registration site.  The
    enumeration is cached after first use — code registering extra
    ``BUILDERS`` entries at runtime must do so before the first
    resolution, or call ``_name_index.cache_clear()``."""
    index: Dict[str, str] = {}
    for family, builder in BUILDERS.items():
        for entry in builder(scale=0.0):
            index[entry_name(entry)] = family
    return index


def entry_names() -> List[str]:
    """All resolvable dataset names (the batch layer's vocabulary)."""
    return list(_name_index())


def build_named(name: str, scale: float = 1.0) -> NamedDifferenceGraph:
    """Resolve one ``Data/Setting/GDType`` name to its difference graph.

    Only the named row's *family* is synthesised (not all of Table II),
    so resolving a single dataset reference stays cheap.  Raises
    ``KeyError`` with the valid vocabulary on an unknown name.
    """
    family = _name_index().get(name)
    if family is None:
        raise KeyError(
            f"unknown dataset name {name!r} (format 'Data/Setting/GDType', "
            f"'-' for a blank column); valid names: {entry_names()}"
        )
    for entry in BUILDERS[family](scale=scale):
        if entry_name(entry) == name:
            return entry
    raise KeyError(  # pragma: no cover - builders are deterministic
        f"dataset {name!r} vanished from family {family!r}"
    )


def build_all(
    scale: float = 1.0,
    families: Optional[Tuple[str, ...]] = None,
) -> List[NamedDifferenceGraph]:
    """All Table II rows (optionally restricted to *families*).

    The row order matches the paper's Table II.
    """
    selected = families if families is not None else tuple(BUILDERS)
    unknown = set(selected) - set(BUILDERS)
    if unknown:
        raise KeyError(f"unknown dataset families: {sorted(unknown)}")
    entries: List[NamedDifferenceGraph] = []
    for family in ("DBLP", "DM", "Wiki", "Douban", "DBLP-C", "Actor"):
        if family in selected:
            entries.extend(BUILDERS[family](scale=scale))
    return entries
