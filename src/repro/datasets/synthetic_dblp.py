"""Synthetic two-snapshot co-authorship data (DBLP / DBLP-C substitutes).

The paper's DBLP experiments (Tables II-IV, VII-IX, XIV) need two
co-author graphs over the same authors — collaborations before and after
a split year — with integer edge weights (paper counts).  The AMiner dump
is not available offline, so this generator reproduces the structural
features those experiments exercise:

* a heavy-tailed collaboration background organised in research
  communities, partially rewired between the two eras (so the difference
  graph has many small positive *and* negative edges);
* planted **emerging groups** — cliques collaborating heavily only in the
  second era (the "UTA Machine Learning" / "CMU Privacy & Security" role);
* planted **disappearing groups** — heavy only in the first era (the
  "Japan Robotics" / "Compiler & Software System" role).

Weights are integers so the paper's Discrete setting (quantising the
collaboration-count difference) behaves exactly as described in
Section VI-B.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.graph import Graph


@dataclass
class CoauthorDataset:
    """Two co-author snapshots plus the planted ground truth."""

    g1: Graph
    g2: Graph
    emerging_groups: List[Set[str]] = field(default_factory=list)
    disappearing_groups: List[Set[str]] = field(default_factory=list)

    @property
    def authors(self) -> Set[str]:
        return self.g1.vertex_set()


def _author(index: int) -> str:
    return f"author{index:05d}"


def _add_paper(graph: Graph, authors: Sequence[str]) -> None:
    """One co-authored paper: +1 on every author pair."""
    for i, u in enumerate(authors):
        for v in authors[i + 1 :]:
            if u != v:
                graph.increment_edge(u, v, 1.0)


def _background_papers(
    g1: Graph,
    g2: Graph,
    communities: List[List[str]],
    papers_per_community: int,
    era2_share: float,
    cross_community_rate: float,
    all_authors: List[str],
    rng: random.Random,
) -> None:
    for community in communities:
        for _ in range(papers_per_community):
            team_size = rng.choice((2, 2, 3, 3, 4, 5))
            team = rng.sample(community, min(team_size, len(community)))
            if rng.random() < cross_community_rate:
                team.append(rng.choice(all_authors))
            target = g2 if rng.random() < era2_share else g1
            _add_paper(target, list(dict.fromkeys(team)))


def _plant_group(
    hot_graph: Graph,
    cold_graph: Graph,
    members: Sequence[str],
    hot_papers: int,
    cold_papers: int,
    rng: random.Random,
) -> None:
    """Make *members* collaborate heavily in one era, barely in the other."""
    members = list(members)
    for _ in range(hot_papers):
        size = rng.randint(2, len(members))
        _add_paper(hot_graph, rng.sample(members, size))
    for _ in range(cold_papers):
        _add_paper(cold_graph, rng.sample(members, 2))
    # Guarantee the full group forms a clique in the hot era: one big
    # jointly-authored survey.
    _add_paper(hot_graph, members)


def coauthor_snapshots(
    n_authors: int = 800,
    n_communities: int = 40,
    papers_per_community: int = 25,
    n_emerging: int = 3,
    n_disappearing: int = 3,
    group_size_range: Tuple[int, int] = (4, 8),
    hot_papers: int = 25,
    cold_papers: int = 2,
    era2_share: float = 0.5,
    cross_community_rate: float = 0.15,
    seed: int = 0,
) -> CoauthorDataset:
    """Generate a DBLP-style dataset with planted contrast groups.

    Parameters mirror the narrative knobs: *hot_papers* controls how
    strong the planted density contrast is; *era2_share* balances the
    background between eras (0.5 keeps the global difference near zero,
    so planted groups dominate the contrast).
    """
    rng = random.Random(seed)
    authors = [_author(i) for i in range(n_authors)]
    g1, g2 = Graph(), Graph()
    g1.add_vertices(authors)
    g2.add_vertices(authors)

    # Random community sizes summing to n_authors.
    shuffled = authors[:]
    rng.shuffle(shuffled)
    communities: List[List[str]] = [[] for _ in range(n_communities)]
    for index, author in enumerate(shuffled):
        communities[index % n_communities].append(author)

    _background_papers(
        g1,
        g2,
        communities,
        papers_per_community,
        era2_share,
        cross_community_rate,
        authors,
        rng,
    )

    # Planted groups draw from distinct communities so they do not overlap.
    pool = [c for c in communities if len(c) >= group_size_range[1]]
    rng.shuffle(pool)
    needed = n_emerging + n_disappearing
    if len(pool) < needed:
        raise ValueError(
            "not enough sufficiently large communities to plant groups; "
            "increase n_authors or lower n_communities"
        )

    emerging_groups: List[Set[str]] = []
    disappearing_groups: List[Set[str]] = []
    for index in range(needed):
        community = pool[index]
        size = rng.randint(*group_size_range)
        members = rng.sample(community, size)
        if index < n_emerging:
            _plant_group(g2, g1, members, hot_papers, cold_papers, rng)
            emerging_groups.append(set(members))
        else:
            _plant_group(g1, g2, members, hot_papers, cold_papers, rng)
            disappearing_groups.append(set(members))

    return CoauthorDataset(
        g1=g1,
        g2=g2,
        emerging_groups=emerging_groups,
        disappearing_groups=disappearing_groups,
    )


def dblp_c_snapshots(
    n_authors: int = 4000,
    n_communities: int = 160,
    papers_per_community: int = 30,
    seed: int = 7,
) -> CoauthorDataset:
    """The larger *DBLP-C* variant used for efficiency experiments.

    Same structure as :func:`coauthor_snapshots`, scaled up, with a pair
    of extreme collaborators planted so the Weighted-setting DCSGA is a
    tiny (2-vertex) subgraph exactly as in Table XIV, plus one heavier
    mid-size group that the Discrete setting surfaces instead.
    """
    dataset = coauthor_snapshots(
        n_authors=n_authors,
        n_communities=n_communities,
        papers_per_community=papers_per_community,
        n_emerging=4,
        n_disappearing=4,
        hot_papers=30,
        seed=seed,
    )
    rng = random.Random(seed + 1)
    authors = sorted(dataset.authors)
    # The prolific duo: a huge number of joint papers only in era 2.
    duo = rng.sample(authors, 2)
    dataset.g2.increment_edge(duo[0], duo[1], 200.0)
    dataset.emerging_groups.append(set(duo))
    return dataset


def community_index(dataset: CoauthorDataset) -> Dict[str, int]:
    """Map each planted-group author to its group id (diagnostics)."""
    index: Dict[str, int] = {}
    for gid, group in enumerate(
        dataset.emerging_groups + dataset.disappearing_groups
    ):
        for author in group:
            index[author] = gid
    return index
