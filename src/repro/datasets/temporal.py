"""Temporal snapshot streams with injected contrast anomalies.

Workload generator for :class:`repro.core.monitor.ContrastMonitor`: a
stationary background network observed with noise at every step, plus an
anomalous cluster whose pairwise connection strengths surge during a
chosen time interval — the "emerging traffic hotspot clutter" scenario of
the paper's introduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.graph.generators import gnp_graph
from repro.graph.graph import Graph


@dataclass
class TemporalStream:
    """A snapshot stream plus its anomaly ground truth."""

    snapshots: List[Graph] = field(repr=False)
    anomaly_members: Set[str] = field(default_factory=set)
    anomaly_start: int = 0
    anomaly_end: int = 0  # exclusive

    @property
    def length(self) -> int:
        return len(self.snapshots)

    def is_anomalous_step(self, step: int) -> bool:
        """Whether the anomaly is active at *step*."""
        return self.anomaly_start <= step < self.anomaly_end


def _vertex(index: int) -> str:
    return f"node{index:04d}"


def snapshot_stream(
    n_vertices: int = 120,
    n_steps: int = 12,
    base_p: float = 0.08,
    noise: float = 0.3,
    anomaly_size: int = 6,
    anomaly_start: int = 6,
    anomaly_duration: int = 3,
    anomaly_boost: Tuple[float, float] = (3.0, 5.0),
    seed: int = 0,
) -> TemporalStream:
    """Generate the stream.

    Each step re-observes a fixed base topology with multiplicative-ish
    noise (``weight + U(-noise, noise)``, floored at 0.1); during
    ``[anomaly_start, anomaly_start + anomaly_duration)`` the anomaly
    members additionally gain ``U(*anomaly_boost)`` on every internal
    pair — well above the noise floor, so DCS flags exactly them.
    """
    if anomaly_size > n_vertices:
        raise ValueError("anomaly cannot exceed the vertex count")
    rng = random.Random(seed)
    names = [_vertex(i) for i in range(n_vertices)]
    base_numeric = gnp_graph(
        n_vertices, base_p, seed=rng.randrange(1 << 30),
        weight=lambda r: r.uniform(0.5, 2.5),
    )
    base = Graph()
    base.add_vertices(names)
    for u, v, weight in base_numeric.edges():
        base.add_edge(names[u], names[v], weight)

    members = set(rng.sample(names, anomaly_size))
    anomaly_end = anomaly_start + anomaly_duration

    snapshots: List[Graph] = []
    for step in range(n_steps):
        snapshot = Graph()
        snapshot.add_vertices(names)
        for u, v, weight in base.edges():
            observed = max(0.1, weight + rng.uniform(-noise, noise))
            snapshot.add_edge(u, v, observed)
        if anomaly_start <= step < anomaly_end:
            ordered = sorted(members)
            for i, u in enumerate(ordered):
                for v in ordered[i + 1 :]:
                    snapshot.increment_edge(
                        u, v, rng.uniform(*anomaly_boost)
                    )
        snapshots.append(snapshot)

    return TemporalStream(
        snapshots=snapshots,
        anomaly_members=members,
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
    )
