"""Synthetic Wikipedia editor-interaction networks (Wiki substitute).

The paper's wikiconflict data (Tables X, XI) consists of two weighted
graphs over the same editors: positive interactions ``G1`` and negative
interactions ``G2``.  The *Consistent* difference graph is ``G1 - G2``
and the *Conflicting* one is ``G2 - G1``.

Key behaviours to reproduce (Section B.1 of the paper's appendix):

* DCSAD solutions are **large** (hundreds of editors) and **not**
  positive cliques;
* DCSGA solutions are tiny (5-6 editors);
* both graph types have broad, heavy-tailed weight distributions.

The generator plants, for each polarity: one tight small clique (the
DCSGA target), and one large moderately-dense community whose pairwise
interactions are elevated but far from complete (the DCSAD target,
deliberately non-clique), on top of a heavy-tailed background of mixed
interactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.graph.generators import chung_lu_graph, powerlaw_degree_sequence
from repro.graph.graph import Graph


@dataclass
class WikiDataset:
    """Positive/negative interaction graphs and planted structures."""

    positive: Graph  # G1: positive interactions
    negative: Graph  # G2: negative interactions
    consistent_clique: Set[str] = field(default_factory=set)
    consistent_blob: Set[str] = field(default_factory=set)
    conflicting_clique: Set[str] = field(default_factory=set)
    conflicting_blob: Set[str] = field(default_factory=set)

    def consistent_gd(self) -> Graph:
        """The *Consistent* difference graph ``G1 - G2``."""
        from repro.core.difference import difference_graph

        return difference_graph(self.negative, self.positive)

    def conflicting_gd(self) -> Graph:
        """The *Conflicting* difference graph ``G2 - G1``."""
        from repro.core.difference import difference_graph

        return difference_graph(self.positive, self.negative)


def _editor(index: int) -> str:
    return f"editor{index:05d}"


def _plant_clique(
    hot: Graph,
    cold: Graph,
    members: List[str],
    hot_weight: Tuple[float, float],
    cold_weight: Tuple[float, float],
    rng: random.Random,
) -> None:
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            hot.increment_edge(u, v, rng.uniform(*hot_weight))
            if rng.random() < 0.3:
                cold.increment_edge(u, v, rng.uniform(*cold_weight))


def _plant_blob(
    hot: Graph,
    members: List[str],
    density: float,
    weight_range: Tuple[float, float],
    rng: random.Random,
) -> None:
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if rng.random() < density:
                hot.increment_edge(u, v, rng.uniform(*weight_range))


def wiki_interactions(
    n_editors: int = 1500,
    background_mean_degree: float = 6.0,
    negative_degree_factor: float = 1.6,
    clique_size: int = 6,
    blob_size: int = 180,
    blob_density: float = 0.25,
    seed: int = 0,
) -> WikiDataset:
    """Generate the paired interaction graphs.

    The background places heavy-tailed positive *and* negative
    interactions on overlapping Chung-Lu topologies, so most difference
    edges are small and mixed-sign; planted structures sit well above the
    background in exactly one polarity.  *negative_degree_factor* makes
    the negative-interaction background denser than the positive one, so
    the Consistent difference graph has ``m+ < m-`` and a negative
    average weight, matching the paper's Wiki rows in Table II.
    """
    rng = random.Random(seed)
    editors = [_editor(i) for i in range(n_editors)]
    positive, negative = Graph(), Graph()
    positive.add_vertices(editors)
    negative.add_vertices(editors)

    degrees = powerlaw_degree_sequence(
        n_editors,
        exponent=2.3,
        min_degree=background_mean_degree / 2.0,
        seed=rng.randrange(1 << 30),
    )

    def heavy_weight(r: random.Random) -> float:
        return min(12.0, r.expovariate(0.7) + 0.2)

    base_positive = chung_lu_graph(
        degrees, seed=rng.randrange(1 << 30), weight=heavy_weight
    )
    base_negative = chung_lu_graph(
        [d * negative_degree_factor for d in degrees],
        seed=rng.randrange(1 << 30),
        weight=heavy_weight,
    )
    for u, v, weight in base_positive.edges():
        positive.add_edge(editors[u], editors[v], weight)
    for u, v, weight in base_negative.edges():
        negative.add_edge(editors[u], editors[v], weight)

    shuffled = editors[:]
    rng.shuffle(shuffled)
    cursor = 0

    def take(count: int) -> List[str]:
        nonlocal cursor
        group = shuffled[cursor : cursor + count]
        cursor += count
        return group

    consistent_clique = take(clique_size)
    conflicting_clique = take(clique_size + 1)
    consistent_blob = take(blob_size)
    conflicting_blob = take(blob_size // 2)

    # Tight cliques: dominate the affinity objective.
    _plant_clique(
        positive, negative, consistent_clique, (6.0, 9.0), (0.2, 1.0), rng
    )
    _plant_clique(
        negative, positive, conflicting_clique, (5.5, 8.5), (0.2, 1.0), rng
    )
    # Large blobs: dominate the average-degree objective without being
    # cliques (density << 1).
    _plant_blob(positive, consistent_blob, blob_density, (2.0, 6.0), rng)
    _plant_blob(negative, conflicting_blob, blob_density * 1.4, (2.0, 6.0), rng)

    return WikiDataset(
        positive=positive,
        negative=negative,
        consistent_clique=set(consistent_clique),
        consistent_blob=set(consistent_blob),
        conflicting_clique=set(conflicting_clique),
        conflicting_blob=set(conflicting_blob),
    )
