"""Command-line interface: mine DCS from edge-list files or event streams.

Usage (also via ``python -m repro``)::

    repro stats  G1.txt G2.txt            # Table II style statistics
    repro dcsad  G1.txt G2.txt            # DCSGreedy (average degree)
    repro dcsga  G1.txt G2.txt --top-k 3  # NewSEA / top-k (graph affinity)
    repro stream events.txt --window 5    # incremental monitoring -> JSON

Graphs are whitespace edge lists (``u v weight``; bare ``u`` lines declare
isolated vertices — the format of :mod:`repro.graph.io`).  Shared flags:

* ``--alpha A``    mine ``rho2 - A * rho1`` (Section III-D),
* ``--flip``       swap G1/G2 (mine the disappearing direction),
* ``--discrete``   apply the paper's DBLP Discrete quantisation,
* ``--cap C``      clamp difference weights into ``[-C, C]``.

The mining commands also take ``--backend {python,sparse}``: ``python``
is the pure-Python reference implementation, ``sparse`` the vectorised
CSR/NumPy backend (same results, much faster on large graphs).

``repro stream`` reads an **event file** (``t u v w`` lines: at step
``t`` the observed strength of pair ``(u, v)`` became ``w``; bare ``u``
lines declare vertices — :mod:`repro.stream.events`), runs the
incremental :class:`~repro.stream.engine.StreamingDCSEngine`, and
prints one JSON alert per line.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_embedding, format_ratio
from repro.analysis.stats import NamedDifferenceGraph, dataset_stats_table
from repro.core.dcsad import dcs_greedy
from repro.core.difference import (
    DBLP_DISCRETE,
    cap_weights,
    difference_graph,
    discrete_difference_graph,
    flip,
)
from repro.core.newsea import new_sea
from repro.core.topk import top_k_dcsad, top_k_dcsga
from repro.graph.graph import Graph
from repro.graph.io import read_pair


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mine Density Contrast Subgraphs (ICDE 2018) from "
        "two edge-list graphs over the same vertices.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("g1", help="edge list of the first graph (G1)")
        p.add_argument("g2", help="edge list of the second graph (G2)")
        p.add_argument(
            "--alpha",
            type=float,
            default=1.0,
            help="mine rho2 - alpha*rho1 (default 1.0)",
        )
        p.add_argument(
            "--flip",
            action="store_true",
            help="swap G1 and G2 (mine the disappearing direction)",
        )
        p.add_argument(
            "--discrete",
            action="store_true",
            help="apply the paper's DBLP Discrete quantisation",
        )
        p.add_argument(
            "--cap",
            type=float,
            default=None,
            help="clamp difference weights into [-CAP, CAP]",
        )

    stats = sub.add_parser("stats", help="difference-graph statistics")
    add_common(stats)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=("python", "sparse"),
            default="python",
            help="solver backend: pure-Python reference or vectorised "
            "CSR/NumPy (default: python)",
        )

    dcsad = sub.add_parser(
        "dcsad", help="density contrast subgraph w.r.t. average degree"
    )
    add_common(dcsad)
    add_backend(dcsad)
    dcsad.add_argument(
        "--top-k", type=int, default=1, help="mine k disjoint answers"
    )

    dcsga = sub.add_parser(
        "dcsga", help="density contrast subgraph w.r.t. graph affinity"
    )
    add_common(dcsga)
    add_backend(dcsga)
    dcsga.add_argument(
        "--top-k", type=int, default=1, help="mine k disjoint answers"
    )

    stream = sub.add_parser(
        "stream",
        help="incremental DCS monitoring over an event file (JSON alerts)",
    )
    stream.add_argument("events", help="event file (t u v w lines)")
    stream.add_argument(
        "--window",
        type=int,
        default=5,
        help="steps of history forming the expectation (default 5)",
    )
    stream.add_argument(
        "--measure",
        choices=("average_degree", "affinity"),
        default="average_degree",
        help="contrast measure: DCSGreedy or NewSEA (default average_degree)",
    )
    stream.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="steps to observe before alerting (default: the window size)",
    )
    stream.add_argument(
        "--policy",
        choices=("exact", "gated"),
        default="exact",
        help="solve scheduling: 'exact' flags the same alerts as batch "
        "recompute (scores equal up to float rounding), 'gated' holds "
        "incumbents for fewer solves",
    )
    stream.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        help="emit only alerts scoring strictly above this (default 0)",
    )
    stream.add_argument(
        "--steps",
        type=int,
        default=None,
        help="close exactly this many steps (default: through the last event)",
    )
    add_backend(stream)
    return parser


def _load_difference(args: argparse.Namespace) -> Graph:
    g1, g2 = read_pair(args.g1, args.g2)
    if args.discrete:
        gd = discrete_difference_graph(
            g1, g2, DBLP_DISCRETE, require_same_vertices=False
        )
        if args.alpha != 1.0:
            raise SystemExit("--discrete and --alpha are mutually exclusive")
    else:
        gd = difference_graph(
            g1, g2, alpha=args.alpha, require_same_vertices=False
        )
    if args.flip:
        gd = flip(gd)
    if args.cap is not None:
        gd = cap_weights(gd, args.cap)
    return gd


def _cmd_stats(args: argparse.Namespace) -> int:
    gd = _load_difference(args)
    entry = NamedDifferenceGraph(
        data=args.g2,
        setting="Discrete" if args.discrete else "Weighted",
        gd_type="Flipped" if args.flip else "G2-G1",
        graph=gd,
    )
    print(dataset_stats_table([entry]).render())
    return 0


def _cmd_dcsad(args: argparse.Namespace) -> int:
    gd = _load_difference(args)
    if args.top_k <= 1:
        result = dcs_greedy(gd, backend=args.backend)
        print(f"subset ({len(result.subset)} vertices):")
        print("  " + " ".join(sorted(map(str, result.subset))))
        print(f"average degree contrast: {result.density:.6g}")
        print(f"approximation ratio bound: {format_ratio(result.ratio_bound)}")
        return 0
    for item in top_k_dcsad(gd, args.top_k, backend=args.backend):
        members = " ".join(sorted(map(str, item.subset)))
        print(
            f"#{item.rank + 1}: contrast {item.objective:.6g} "
            f"({len(item.subset)} vertices): {members}"
        )
    return 0


def _cmd_dcsga(args: argparse.Namespace) -> int:
    gd = _load_difference(args)
    gd_plus = gd.positive_part()
    if args.top_k <= 1:
        result = new_sea(gd_plus, backend=args.backend)
        print(f"support ({len(result.support)} vertices):")
        print("  " + format_embedding(result.x.items()))
        print(f"affinity contrast: {result.objective:.6g}")
        print(f"positive clique: {result.is_positive_clique}")
        return 0
    for item in top_k_dcsga(gd_plus, args.top_k, backend=args.backend):
        assert item.embedding is not None
        print(
            f"#{item.rank + 1}: affinity {item.objective:.6g}: "
            + format_embedding(item.embedding.items())
        )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream.engine import StreamingDCSEngine
    from repro.stream.events import read_events

    log = read_events(args.events)
    universe = log.universe
    if not universe:
        raise SystemExit(f"{args.events}: no vertices declared or evented")
    engine = StreamingDCSEngine(
        universe,
        window=args.window,
        measure=args.measure,
        warmup=args.warmup,
        backend=args.backend,
        policy=args.policy,
        min_score=args.threshold,
    )
    alerts = engine.run(log.events, n_steps=args.steps)
    for alert in alerts:
        print(alert.to_json())
    stats = engine.stats
    print(
        f"# steps={stats.steps} events={stats.events} alerts={len(alerts)} "
        f"solves={stats.full_solves} cache_hits={stats.cache_hits} "
        f"holds={stats.incumbent_holds} probes={stats.local_probes}",
        file=sys.stderr,
    )
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "dcsad": _cmd_dcsad,
    "dcsga": _cmd_dcsga,
    "stream": _cmd_stream,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
