"""Command-line interface: mine DCS from edge-list files or event streams.

Usage (also via ``python -m repro``)::

    repro stats  G1.txt G2.txt            # Table II style statistics
    repro dcsad  G1.txt G2.txt            # DCSGreedy (average degree)
    repro dcsga  G1.txt G2.txt --top-k 3  # NewSEA / top-k (graph affinity)
    repro batch  queries.json --workers 4 # batch service -> JSONL results
    repro serve  --port 8765              # long-running HTTP query service
    repro stream events.txt --window 5    # incremental monitoring -> JSON

Graphs are whitespace edge lists (``u v weight``; bare ``u`` lines declare
isolated vertices — the format of :mod:`repro.graph.io`).  Shared flags:

* ``--alpha A``    mine ``rho2 - A * rho1`` (Section III-D),
* ``--flip``       swap G1/G2 (mine the disappearing direction),
* ``--discrete``   apply the paper's DBLP Discrete quantisation,
* ``--cap C``      clamp difference weights into ``[-C, C]``.

The mining commands also take ``--backend NAME``, resolved through the
engine registry (:mod:`repro.engine`): ``python`` is the pure-Python
reference implementation, ``sparse`` the vectorised CSR/NumPy backend
(same results, much faster on large graphs), and any backend
registered via :func:`repro.engine.register_backend` works by name.
``--json`` prints the full typed result envelope
(:class:`repro.engine.SolveResult`: measure, params, vertices,
density, the Theorem 2 beta certificate, KKT status, timings,
provenance) instead of the human-readable summary.

``repro batch`` serves many typed queries in one submission: a JSON
array (or JSONL) of query objects — each naming a ``kind`` (``dcsad`` /
``dcsga`` / ``stream``), an input (``g1``/``g2`` paths, a registry
``dataset`` name, or an ``events`` file) and any of the flags above as
fields — is planned into a deduplicated work DAG, executed across
``--workers`` processes with per-query ``--timeout`` isolation, memoised
in a content-addressed cache (``--cache-dir`` persists it), and written
back as one JSONL result record per query.

``repro serve`` starts the long-running query service
(:mod:`repro.service`): an HTTP/JSON server that keeps named graphs
prepared in a warm LRU and serves solve / batch / stream-replay
requests against them, with admission control (429 on overflow),
per-request timeouts, ``/healthz`` and ``/metrics``.

``repro stream`` reads an **event file** (``t u v w`` lines: at step
``t`` the observed strength of pair ``(u, v)`` became ``w``; bare ``u``
lines declare vertices — :mod:`repro.stream.events`), runs the
incremental :class:`~repro.stream.engine.StreamingDCSEngine`, and
prints one JSON alert per line.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_embedding, format_ratio
from repro.analysis.stats import NamedDifferenceGraph, dataset_stats_table
from repro.core.difference import assemble_difference
from repro.engine.envelope import SolveRequest, SolveResult, solve
from repro.engine.prepared import PreparedGraph
from repro.graph.graph import Graph
from repro.graph.io import read_pair


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mine Density Contrast Subgraphs (ICDE 2018) from "
        "two edge-list graphs over the same vertices.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("g1", help="edge list of the first graph (G1)")
        p.add_argument("g2", help="edge list of the second graph (G2)")
        p.add_argument(
            "--alpha",
            type=float,
            default=1.0,
            help="mine rho2 - alpha*rho1 (default 1.0)",
        )
        p.add_argument(
            "--flip",
            action="store_true",
            help="swap G1 and G2 (mine the disappearing direction)",
        )
        p.add_argument(
            "--discrete",
            action="store_true",
            help="apply the paper's DBLP Discrete quantisation",
        )
        p.add_argument(
            "--cap",
            type=float,
            default=None,
            help="clamp difference weights into [-CAP, CAP]",
        )

    stats = sub.add_parser("stats", help="difference-graph statistics")
    add_common(stats)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            default="python",
            help="solver backend name from the engine registry: 'python' "
            "(pure-Python reference), 'sparse' (vectorised CSR/NumPy), "
            "'native' (Numba-compiled kernels; requires numba), "
            "or any backend registered via "
            "repro.engine.register_backend (default: python)",
        )

    def add_json(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--json",
            action="store_true",
            help="print the full typed result envelope (answer + "
            "timings + provenance) as one JSON object",
        )

    def add_profile(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile",
            action="store_true",
            help="trace the solve and print its span tree with "
            "per-phase self-times to stderr; with --json the same "
            "breakdown also appears in timings['phases']",
        )

    dcsad = sub.add_parser(
        "dcsad", help="density contrast subgraph w.r.t. average degree"
    )
    add_common(dcsad)
    add_backend(dcsad)
    add_json(dcsad)
    add_profile(dcsad)
    dcsad.add_argument(
        "--top-k", type=int, default=1, help="mine k disjoint answers"
    )

    dcsga = sub.add_parser(
        "dcsga", help="density contrast subgraph w.r.t. graph affinity"
    )
    add_common(dcsga)
    add_backend(dcsga)
    add_json(dcsga)
    add_profile(dcsga)
    dcsga.add_argument(
        "--top-k", type=int, default=1, help="mine k disjoint answers"
    )

    batch = sub.add_parser(
        "batch",
        help="serve a batch of typed DCS queries (JSON/JSONL in, JSONL out)",
    )
    batch.add_argument(
        "queries",
        help="query file: a JSON array or JSONL of query objects "
        "(fields mirror the dcsad/dcsga/stream flags; see "
        "repro.batch.queries)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the solve fan-out (default 1)",
    )
    batch.add_argument(
        "--mode",
        choices=("auto", "process", "serial"),
        default="auto",
        help="scheduler mode: auto picks a process pool only when it "
        "can help (default auto)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-query solve timeout in seconds",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="persist the content-addressed result cache here "
        "(default: in-memory only)",
    )
    batch.add_argument(
        "--out",
        default=None,
        help="write JSONL results to this file (default: stdout)",
    )
    batch.add_argument(
        "--plan",
        action="store_true",
        help="print the deduplicated work DAG and exit without solving",
    )

    serve = sub.add_parser(
        "serve",
        help="long-running HTTP/JSON query service (warm graph cache, "
        "batch + stream-replay routes, /healthz, /metrics)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port; 0 picks an ephemeral port and prints it "
        "(default 8765)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 (default) serves in-process, N >= 2 "
        "spawns N solver processes behind a router that shards graphs "
        "by reference and shares prepared CSR arrays via /dev/shm",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=32,
        help="admission queue bound; overflow answers 429 (default 32)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request solve timeout in seconds "
        "(a request's own 'timeout' field overrides it)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persist the content-addressed result cache here "
        "(default: in-memory only)",
    )
    serve.add_argument(
        "--warm-capacity",
        type=int,
        default=8,
        help="prepared graphs kept warm in the LRU (default 8)",
    )
    serve.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="synthesis scale for dataset references (default 0.25)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=32,
        help="resident stream sessions allowed; overflow answers 429 "
        "(default 32)",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        help="idle seconds before a stream session expires "
        "(default: never)",
    )
    serve.add_argument(
        "--session-budget",
        type=int,
        default=None,
        help="soft memory budget in graph cells; session charges shed "
        "warm preparations past it (default: unbounded)",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="attach a JSON-lines log handler at this level "
        "(default: no logging, today's silent behaviour)",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON access record per request "
        "(implies --log-level info unless set explicitly)",
    )
    serve.add_argument(
        "--slow-query",
        type=float,
        default=None,
        metavar="SECONDS",
        help="log a warning for compute requests slower than this "
        "(default: disabled)",
    )

    stream = sub.add_parser(
        "stream",
        help="incremental DCS monitoring over an event file (JSON alerts)",
    )
    stream.add_argument("events", help="event file (t u v w lines)")
    stream.add_argument(
        "--window",
        type=int,
        default=5,
        help="steps of history forming the expectation (default 5)",
    )
    stream.add_argument(
        "--measure",
        choices=("average_degree", "affinity"),
        default="average_degree",
        help="contrast measure: DCSGreedy or NewSEA (default average_degree)",
    )
    stream.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="steps to observe before alerting (default: the window size)",
    )
    stream.add_argument(
        "--policy",
        choices=("exact", "gated"),
        default="exact",
        help="solve scheduling: 'exact' flags the same alerts as batch "
        "recompute (scores equal up to float rounding), 'gated' holds "
        "incumbents for fewer solves",
    )
    stream.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        help="emit only alerts scoring strictly above this (default 0)",
    )
    stream.add_argument(
        "--steps",
        type=int,
        default=None,
        help="close exactly this many steps (default: through the last event)",
    )
    stream.add_argument(
        "--top-k",
        type=int,
        default=1,
        help="maintain k incumbent answers; the final ranking is "
        "summarised on stderr (default 1)",
    )
    add_backend(stream)

    lint = sub.add_parser(
        "lint",
        help="AST-based concurrency & determinism invariant checker",
    )
    from repro.lintkit.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _load_difference(args: argparse.Namespace) -> Graph:
    g1, g2 = read_pair(args.g1, args.g2)
    if args.discrete and args.alpha != 1.0:
        raise SystemExit("--discrete and --alpha are mutually exclusive")
    return assemble_difference(
        g1,
        g2,
        alpha=args.alpha,
        flipped=args.flip,
        discrete=args.discrete,
        cap=args.cap,
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    gd = _load_difference(args)
    entry = NamedDifferenceGraph(
        data=args.g2,
        setting="Discrete" if args.discrete else "Weighted",
        gd_type="Flipped" if args.flip else "G2-G1",
        graph=gd,
    )
    print(dataset_stats_table([entry]).render())
    return 0


def _solve_envelope(args: argparse.Namespace, measure: str) -> SolveResult:
    """One engine round-trip shared by the two mining commands."""
    from repro.exceptions import (
        BackendUnavailableError,
        UnknownBackendError,
    )

    prepared = PreparedGraph(_load_difference(args))
    if args.json:
        # The envelope's provenance carries the input identity when it
        # is already known; for JSON consumers it is worth computing.
        prepared.fingerprint
    request = SolveRequest(
        measure=measure,
        backend=args.backend,
        k=args.top_k,
        # The KKT verification pass is extra work whose result only the
        # JSON envelope surfaces; the human summary reads the
        # positive-clique flag the solver computed anyway.
        check_kkt=args.json,
    )
    try:
        if not args.profile:
            return solve(request, prepared)
        from repro.obs.trace import recording, render_trace

        with recording() as tracer:
            result = solve(request, prepared)
    except (UnknownBackendError, BackendUnavailableError) as exc:
        raise SystemExit(str(exc))
    # The tree goes to stderr so `--json --profile` keeps stdout as one
    # parseable JSON object.
    print(render_trace(tracer), file=sys.stderr)
    return result


def _cmd_dcsad(args: argparse.Namespace) -> int:
    result = _solve_envelope(args, "average_degree")
    if args.json:
        print(result.to_json())
        return 0
    if args.top_k <= 1:
        print(f"subset ({len(result.subset)} vertices):")
        print("  " + " ".join(result.vertices))
        print(f"average degree contrast: {result.density:.6g}")
        print(f"approximation ratio bound: {format_ratio(result.beta)}")
        return 0
    for item in result.detail["results"]:
        members = " ".join(item["vertices"])
        print(
            f"#{item['rank'] + 1}: contrast {item['density']:.6g} "
            f"({len(item['vertices'])} vertices): {members}"
        )
    return 0


def _cmd_dcsga(args: argparse.Namespace) -> int:
    result = _solve_envelope(args, "affinity")
    if args.json:
        print(result.to_json())
        return 0
    if args.top_k <= 1:
        assert result.embedding is not None
        print(f"support ({len(result.subset)} vertices):")
        print("  " + format_embedding(result.embedding.items()))
        print(f"affinity contrast: {result.density:.6g}")
        print(f"positive clique: {result.detail['is_positive_clique']}")
        return 0
    for item in result.detail["results"]:
        print(
            f"#{item['rank'] + 1}: affinity {item['density']:.6g}: "
            + format_embedding(item["embedding"].items())
        )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream.engine import StreamingDCSEngine
    from repro.stream.events import read_events

    log = read_events(args.events)
    if not log.universe:
        raise SystemExit(f"{args.events}: no vertices declared or evented")
    try:
        engine = StreamingDCSEngine(
            set(log.universe),
            window=args.window,
            measure=args.measure,
            warmup=args.warmup,
            backend=args.backend,
            policy=args.policy,
            min_score=args.threshold,
            k=args.top_k,
        )
    except ValueError as exc:  # bad --top-k and friends exit cleanly
        raise SystemExit(str(exc))
    alerts = engine.run(log.events, n_steps=args.steps)
    stats = engine.stats
    for alert in alerts:
        print(alert.to_json())
    print(
        f"# steps={stats.steps} events={stats.events} alerts={len(alerts)} "
        f"solves={stats.full_solves} cache_hits={stats.cache_hits} "
        f"holds={stats.incumbent_holds} probes={stats.local_probes}",
        file=sys.stderr,
    )
    if args.top_k > 1:
        for item in engine.current_topk():
            members = ",".join(sorted(str(v) for v in item.subset))
            print(
                f"# topk rank={item.rank} score={item.objective:.6f} "
                f"subset={members}",
                file=sys.stderr,
            )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import BatchExecutor, BatchPlan, ResultCache, read_queries

    try:
        queries = read_queries(args.queries)
    except (ValueError, TypeError, OSError) as exc:
        # InputMismatchError is a ValueError; TypeError covers fields
        # of the wrong JSON type (e.g. "k": "3"); OSError covers a
        # missing/unreadable file — untrusted input must exit cleanly,
        # never with a traceback.
        raise SystemExit(f"{args.queries}: {exc}")
    if not queries:
        raise SystemExit(f"{args.queries}: no queries")
    if args.plan:
        print(BatchPlan(queries).describe())
        return 0
    try:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
        executor = BatchExecutor(
            workers=args.workers,
            mode=args.mode,
            cache=cache,
            timeout=args.timeout,
        )
    except (ValueError, OSError) as exc:  # bad --workers, cache dir, ...
        raise SystemExit(str(exc))
    results = executor.run(queries)
    lines = "\n".join(result.to_json() for result in results)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as stream:
                stream.write(lines + "\n")
        except OSError as exc:
            raise SystemExit(f"{args.out}: {exc}")
    else:
        print(lines)
    print(f"# {executor.stats.summary()}", file=sys.stderr)
    return 0 if all(r.status == "ok" for r in results) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.batch.cache import ResultCache
    from repro.service import ServiceApp

    if args.log_level is not None or args.access_log:
        from repro.obs.logs import configure_logging

        configure_logging(level=args.log_level or "info")

    if args.workers >= 2:
        # Multi-process scale-out: a router in front of N full service
        # workers, graphs sharded by reference and shared zero-copy
        # via /dev/shm (repro.service.cluster).  Each worker process
        # warms its backends itself; the persistent result cache stays
        # single-process-only (each worker keeps an in-memory cache).
        from repro.service.cluster import run_cluster

        if args.cache_dir:
            print(
                "# --cache-dir is ignored with --workers >= 2 "
                "(per-worker in-memory caches)",
                file=sys.stderr,
            )
        try:
            return run_cluster(
                args.workers,
                host=args.host,
                port=args.port,
                app_options={
                    "max_pending": args.max_pending,
                    "timeout": args.timeout,
                    "warm_capacity": args.warm_capacity,
                    "scale": args.scale,
                    "max_sessions": args.max_sessions,
                    "session_ttl": args.session_ttl,
                    "session_budget_cells": args.session_budget,
                    "access_log": args.access_log,
                    "slow_query_seconds": args.slow_query,
                    "log_level": args.log_level,
                },
                banner=lambda host, port: print(
                    f"# repro serve listening on http://{host}:{port}",
                    flush=True,
                ),
            )
        except (ValueError, OSError, RuntimeError) as exc:
            raise SystemExit(str(exc))

    try:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
        app = ServiceApp(
            cache=cache,
            workers=args.workers,
            max_pending=args.max_pending,
            timeout=args.timeout,
            warm_capacity=args.warm_capacity,
            scale=args.scale,
            max_sessions=args.max_sessions,
            session_ttl=args.session_ttl,
            session_budget_cells=args.session_budget,
            access_log=args.access_log,
            slow_query_seconds=args.slow_query,
        )
    except (ValueError, OSError) as exc:  # bad --workers, cache dir, ...
        raise SystemExit(str(exc))

    # Warm every available backend before accepting traffic: a
    # JIT-compiling backend (native) pays its compilation here, once per
    # service process, never inside a client's (timed, timeout-budgeted)
    # request.
    from repro.engine import backend_names, get_backend

    warmed = []
    for name in sorted({get_backend(n, require=False).name for n in backend_names()}):
        backend = get_backend(name, require=False)
        if backend.available():
            backend.warm()
            warmed.append(name)
    print(f"# warmed backends: {', '.join(warmed)}", file=sys.stderr)

    async def _run() -> None:
        server = await app.start_server(host=args.host, port=args.port)
        host, port = server.sockets[0].getsockname()[:2]
        # One parseable line on stdout so scripts (the smoke job, the
        # benchmark harness) can discover an ephemeral --port 0.
        print(f"# repro serve listening on http://{host}:{port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()
            await app.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("# repro serve stopped", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lintkit.cli import run_from_args

    return run_from_args(args)


_COMMANDS = {
    "stats": _cmd_stats,
    "dcsad": _cmd_dcsad,
    "dcsga": _cmd_dcsga,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "stream": _cmd_stream,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
