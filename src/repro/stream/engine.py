"""Incremental streaming DCS engine.

The serving loop of the paper's anomaly use case: ingest
:class:`~repro.stream.events.EdgeEvent` observations, maintain the
expectation/difference machinery by deltas
(:class:`~repro.stream.window.SlidingWindowAccumulator`), track which
vertices' incident difference weights moved
(:class:`DirtyRegion`), and answer "what is the densest contrast
subgraph *right now*" without recomputing from scratch.

Solve scheduling — the incremental driver
-----------------------------------------

``policy="exact"`` (default) is answer-faithful to batch recompute —
same alert subsets, scores equal up to float summation order:

* **clean step** → the difference graph is unchanged since the last
  solve, so the previous answer is provably still the answer; reuse it
  (``source="cache"``).
* **dirty step** → run the full solver, but only on the *active
  subgraph* (vertices with at least one nonzero difference edge) — the
  rest of the universe is isolated in ``GD`` and cannot join a densest
  subgraph candidate.

``policy="gated"`` adds the incumbent heuristics on top (trading exact
answer parity for far fewer full solves under churn).  Difference
weights move for two reasons — new *events*, and the predictable
*decay* of old contrast as the window absorbs it — and the gate treats
them differently:

* **events inside** the incumbent's closed neighbourhood → its
  structure changed: full solve, with the previous answer
  *warm-starting* the driver (the re-scored incumbent is kept if the
  fresh greedy answer is worse — peeling is a heuristic and must never
  regress below a carried answer).
* **events elsewhere** → the incumbent's subset is still the local
  optimum it was; its score is refreshed by an O(|S| + vol S)
  **re-score** (a CSR submatrix sum on the sparse backend — this is
  where the patch-and-rebuild mirror earns its keep), and a **local
  probe** solves only the evented neighbourhood, holding the incumbent
  unless the probe finds a challenger (→ full solve).
* **decay / drift fallbacks**: the incumbent is dropped and re-solved
  once its re-scored contrast falls below ``hold_margin`` of the score
  that installed it, or once the cumulative evented region since the
  last full solve covers more than ``drift_ratio`` of the universe.

:func:`snapshot_recompute` is the naive reference: materialise every
step's snapshot, rebuild the window mean and the difference graph from
scratch, full solve every step — exactly what
:class:`repro.core.monitor.ContrastMonitor` does today.  The benchmark
gates the engine's speedup against it *with identical alert sets*.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.difference import difference_graph
from repro.core.monitor import mean_graph
from repro.core.topk import (
    IncrementalTopK,
    RankedDCS,
    top_k_dcsad,
    top_k_dcsga,
)
from repro.engine.envelope import SolveRequest, solve
from repro.engine.prepared import PreparedGraph
from repro.engine.registry import get_backend
from repro.exceptions import InputMismatchError, VertexNotFound
from repro.graph.graph import Graph, Vertex
from repro.stream.alerts import (
    SOURCE_CACHE,
    SOURCE_INCUMBENT,
    SOURCE_SOLVE,
    AlertLog,
    StreamAlert,
)
from repro.stream.events import EdgeEvent
from repro.stream.window import SlidingWindowAccumulator

Measure = str  # "average_degree" | "affinity"

#: Difference weights at or below this magnitude are treated as no edge.
#: Rebuilt window means carry float-summation noise on stable edges
#: (``(w + w + w) / 3 != w``); pruning makes the incremental and naive
#: difference graphs agree on which edges *exist*.
PRUNE_EPS = 1e-9


@dataclass(frozen=True)
class SolveOutcome:
    """What a solve of the current difference graph produced.

    ``x`` carries the affinity embedding (support == subset) so a held
    incumbent can be re-scored as ``x^T D x`` on the updated difference;
    it is None for the average-degree measure.
    """

    subset: FrozenSet[Vertex]
    score: float
    x: Optional[Dict[Vertex, float]] = None

    @property
    def empty(self) -> bool:
        return not self.subset


EMPTY_OUTCOME = SolveOutcome(subset=frozenset(), score=0.0)


def solve_difference(
    diff: Graph,
    measure: Measure,
    backend: str = "python",
    tol_scale: float = 1e-2,
    seed: int = 0,
) -> SolveOutcome:
    """Solve DCS on a (maintained or rebuilt) difference graph.

    Shared by the engine and the naive recompute path, so both sides of
    every parity check run literally the same solver on the same
    semantics: restrict to the active subgraph (isolated vertices cannot
    be part of a positive-density answer), then solve through the
    engine's shared result envelope — DCSGreedy (``average_degree``) or
    NewSEA on ``GD+`` (``affinity``), with one
    :class:`~repro.engine.prepared.PreparedGraph` owning the positive
    part (KKT reporting is skipped: this is the per-step hot path).
    A difference graph with no edges — or no positive edge under
    ``affinity`` — yields the empty outcome (score 0, nothing to flag).
    """
    if measure not in ("average_degree", "affinity"):
        raise ValueError(f"unknown measure {measure!r}")
    active = [u for u in diff.vertices() if diff.unweighted_degree(u) > 0]
    if not active:
        return EMPTY_OUTCOME
    sub = diff.subgraph(active)
    prepared = PreparedGraph(sub)
    if measure == "affinity" and prepared.gd_plus.num_edges == 0:
        return EMPTY_OUTCOME
    result = solve(
        SolveRequest(
            measure=measure,
            backend=backend,
            tol_scale=tol_scale,
            seed=seed,
            check_kkt=False,
        ),
        prepared,
    )
    if result.density <= 0.0:
        return EMPTY_OUTCOME
    return SolveOutcome(
        subset=frozenset(result.subset),
        score=result.density,
        x=dict(result.embedding) if result.embedding is not None else None,
    )


def solve_difference_topk(
    diff: Graph,
    measure: Measure,
    k: int,
    backend: str = "python",
    tol_scale: float = 1e-2,
    seed: int = 0,
    strategy: str = "vertices",
) -> List[SolveOutcome]:
    """Top-k solve of a difference graph, ranked best first.

    The k>1 counterpart of :func:`solve_difference`, sharing its
    active-subgraph restriction so the incremental engine and a batch
    recompute of the same window run literally the same top-k
    functions (:func:`~repro.core.topk.top_k_dcsad` /
    :func:`~repro.core.topk.top_k_dcsga`) on the same semantics.
    Returns only strictly-positive answers (possibly fewer than *k*).
    """
    if measure not in ("average_degree", "affinity"):
        raise ValueError(f"unknown measure {measure!r}")
    active = [u for u in diff.vertices() if diff.unweighted_degree(u) > 0]
    if not active:
        return []
    sub = diff.subgraph(active)
    ranked: List[RankedDCS]
    if measure == "average_degree":
        ranked = top_k_dcsad(sub, k, strategy=strategy, backend=backend)  # type: ignore[arg-type]
    else:
        prepared = PreparedGraph(sub)
        if prepared.gd_plus.num_edges == 0:
            return []
        ranked = top_k_dcsga(
            prepared.gd_plus, k, tol_scale=tol_scale, backend=backend
        )
    return [
        SolveOutcome(
            subset=frozenset(item.subset),
            score=item.objective,
            x=dict(item.embedding) if item.embedding is not None else None,
        )
        for item in ranked
        if item.objective > 0.0
    ]


class DirtyRegion:
    """Vertices whose incident difference weights changed since a mark.

    Difference weights move for two very different reasons, and the
    tracker separates them:

    * **Touched** (``touched_since_answer``): *any* difference-weight
      change, including the predictable shrink of an edge's contrast as
      the sliding window absorbs an old surge ("decay").  While anything
      is touched, a previously solved answer's *score* is stale — this
      horizon drives cache validity.
    * **Evented** (``evented_since_answer`` / ``evented_since_full``):
      changes caused by an actual state change (a new observation).
      Only these can create *new* contrast structure, so they drive the
      incumbent-neighbourhood gate, the local-probe region, and the
      drift fallback.
    """

    __slots__ = ("touched_since_answer", "evented_since_answer", "evented_since_full")

    def __init__(self) -> None:
        self.touched_since_answer: Set[Vertex] = set()
        self.evented_since_answer: Set[Vertex] = set()
        self.evented_since_full: Set[Vertex] = set()

    def touch(self, u: Vertex, v: Vertex) -> None:
        self.touched_since_answer.add(u)
        self.touched_since_answer.add(v)

    def event(self, u: Vertex, v: Vertex) -> None:
        self.evented_since_answer.add(u)
        self.evented_since_answer.add(v)
        self.evented_since_full.add(u)
        self.evented_since_full.add(v)

    @property
    def clean(self) -> bool:
        return not self.touched_since_answer

    def settle(self) -> None:
        """The pending changes were absorbed by an answer (hold or cache)."""
        self.touched_since_answer.clear()
        self.evented_since_answer.clear()

    def reset(self) -> None:
        """A full solve re-anchored the incumbent everywhere."""
        self.touched_since_answer.clear()
        self.evented_since_answer.clear()
        self.evented_since_full.clear()


@dataclass
class EngineStats:
    """Counters proving the incremental machinery is actually engaged."""

    steps: int = 0
    events: int = 0
    state_changes: int = 0
    diff_edits: int = 0
    full_solves: int = 0
    cache_hits: int = 0
    local_probes: int = 0
    incumbent_holds: int = 0
    rescores: int = 0
    warm_start_wins: int = 0
    drift_fallbacks: int = 0
    csr_patches: int = 0
    csr_rebuilds: int = 0


#: How many recent per-step profiles an engine retains.
STEP_PROFILE_CAPACITY = 64


@dataclass(frozen=True)
class StepProfile:
    """One answered step's solve-scheduling record.

    Captured *before* the answer settles or resets the dirty region, so
    the sizes describe what the scheduler actually saw when it chose
    between cache reuse, an incumbent hold, and a full solve.  These
    are the per-step phase stats the observability layer ships — cheap
    enough (one tiny frozen record per answered step) to collect
    unconditionally, unlike span tracing, which stays off the per-step
    hot path.
    """

    step: int
    #: where the answer came from: ``cache`` | ``solve`` | ``incumbent``
    source: str
    #: dirty-region sizes at decision time
    touched: int
    evented: int
    evented_since_full: int
    #: wall seconds the scheduling decision + solve took
    seconds: float
    #: whether the step emitted an alert (score above the floor)
    emitted: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "source": self.source,
            "touched": self.touched,
            "evented": self.evented,
            "evented_since_full": self.evented_since_full,
            "seconds": self.seconds,
            "emitted": self.emitted,
        }


class StreamingDCSEngine:
    """Maintain DCS answers over a live stream of edge events.

    Parameters
    ----------
    universe:
        The fixed vertex set of the DCS problem (the paper's ``V``).
        Events touching unknown vertices raise :class:`VertexNotFound`.
    window:
        Number of recent steps forming the expectation (window mean).
    measure:
        ``"average_degree"`` (DCSGreedy) or ``"affinity"`` (NewSEA).
    warmup:
        Steps to observe before emitting alerts (default: *window*).
    backend:
        ``"python"`` or ``"sparse"`` — forwarded to the solvers; with
        ``"sparse"`` the engine also keeps a patch-and-rebuild
        :class:`~repro.graph.sparse.MutableCSRAdjacency` mirror of the
        difference graph for vectorised incumbent re-scoring.
    policy:
        ``"exact"`` (cache + full solve; parity with batch recompute) or
        ``"gated"`` (incumbent-neighbourhood gating, local probes,
        drift fallback).
    min_score:
        Alerts are emitted only for answers scoring strictly above this.
    drift_ratio:
        Gated policy: fraction of the universe the cumulative
        event-dirty region may reach before forcing a full solve.
    hold_margin:
        Gated policy: an incumbent is held only while its re-scored
        contrast stays above ``hold_margin`` times the score of the full
        solve that produced it; decaying past that triggers a re-solve.
    k:
        How many incumbent answers to maintain.  ``k=1`` (default) is
        the single-incumbent engine; ``k>1`` holds an
        :class:`~repro.core.topk.IncrementalTopK` of the best *k*
        answers — dirty steps run the batch top-k solvers on the
        maintained difference, the gated policy re-scores *every*
        incumbent (rank membership can change without a solve), and
        :meth:`current_topk` exposes the maintained ranking.  Emitted
        alerts always carry the rank-0 answer.
    topk_strategy:
        Removal strategy between top-k DCSGreedy rounds when ``k>1``
        and the measure is ``average_degree`` (see
        :func:`~repro.core.topk.top_k_dcsad`).
    """

    def __init__(
        self,
        universe: Iterable[Vertex],
        window: int = 5,
        measure: Measure = "average_degree",
        warmup: Optional[int] = None,
        backend: str = "python",
        policy: str = "exact",
        min_score: float = 0.0,
        drift_ratio: float = 0.5,
        hold_margin: float = 0.5,
        tol_scale: float = 1e-2,
        prune_eps: float = PRUNE_EPS,
        seed: int = 0,
        k: int = 1,
        topk_strategy: str = "vertices",
    ) -> None:
        if measure not in ("average_degree", "affinity"):
            raise ValueError(f"unknown measure {measure!r}")
        # Unknown names, missing dependencies and solver-incapable
        # backends all fail here — never at some later dirty step.
        solver_backend = get_backend(backend)
        solver_backend.require_capabilities(
            "peel" if measure == "average_degree" else "new_sea"
        )
        if policy not in ("exact", "gated"):
            raise ValueError(f"unknown policy {policy!r}")
        if k < 1:
            raise ValueError("k must be positive")
        if topk_strategy not in ("vertices", "edges"):
            raise ValueError(f"unknown removal strategy {topk_strategy!r}")
        self.universe: Set[Vertex] = set(universe)
        if not self.universe:
            raise ValueError("universe must not be empty")
        self.window = window
        self.measure = measure
        self.warmup = window if warmup is None else max(1, warmup)
        self.backend = backend
        self.policy = policy
        self.min_score = min_score
        self.drift_ratio = drift_ratio
        self.hold_margin = hold_margin
        self.tol_scale = tol_scale
        self.prune_eps = prune_eps
        self.seed = seed
        self.k = k
        self.topk_strategy = topk_strategy

        self._accumulator = SlidingWindowAccumulator(window)
        self._dirty = DirtyRegion()
        self.stats = EngineStats()
        self._step_profiles: Deque[StepProfile] = deque(
            maxlen=STEP_PROFILE_CAPACITY
        )
        self._cached: Optional[SolveOutcome] = None
        self._incumbent: Optional[SolveOutcome] = None
        #: the k maintained incumbents (None in the k=1 configuration);
        #: the answer of record for k>1 — ``_cached`` mirrors its rank-0
        #: entry and is refreshed whenever the structure re-sorts
        self._topk: Optional[IncrementalTopK] = (
            IncrementalTopK(k, min_score=0.0) if k > 1 else None
        )
        #: score of the full solve that installed the incumbent
        self._anchor_score = 0.0

        self._mirror = None
        if solver_backend.supports_shared_adjacency:
            from repro.graph.sparse import MutableCSRAdjacency

            base = Graph()
            base.add_vertices(self.universe)
            self._mirror = MutableCSRAdjacency(
                base, order=sorted(self.universe, key=repr)
            )
            self._diff = self._mirror.graph
        else:
            self._diff = Graph()
            self._diff.add_vertices(self.universe)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def step(self) -> int:
        """Index of the open (not yet closed) step."""
        return self._accumulator.steps_closed

    @property
    def difference(self) -> Graph:
        """The maintained difference graph (read-only by convention)."""
        return self._diff

    @property
    def accumulator(self) -> SlidingWindowAccumulator:
        """The underlying window accumulator (for tests/diagnostics)."""
        return self._accumulator

    def state_graph(self) -> Graph:
        """Materialise the current persistent snapshot."""
        return self._accumulator.state_graph(self.universe)

    def step_profiles(self) -> List[StepProfile]:
        """The retained recent per-step records, oldest first."""
        return list(self._step_profiles)

    @property
    def last_step_profile(self) -> Optional[StepProfile]:
        """The most recent answered step's record (None before any)."""
        return self._step_profiles[-1] if self._step_profiles else None

    def phase_stats(self) -> Dict[str, Any]:
        """The solve-scheduling phase breakdown, JSON-ready.

        Aggregate counters (how often each scheduling path fired) plus
        the last answered step's :class:`StepProfile` — the shape the
        service's per-session alerts route and ``/metrics`` consume.
        """
        stats = self.stats
        last = self.last_step_profile
        return {
            "steps": stats.steps,
            "events": stats.events,
            "full_solves": stats.full_solves,
            "cache_hits": stats.cache_hits,
            "incumbent_holds": stats.incumbent_holds,
            "local_probes": stats.local_probes,
            "rescores": stats.rescores,
            "drift_fallbacks": stats.drift_fallbacks,
            "warm_start_wins": stats.warm_start_wins,
            "dirty": {
                "touched": len(self._dirty.touched_since_answer),
                "evented": len(self._dirty.evented_since_answer),
                "evented_since_full": len(self._dirty.evented_since_full),
            },
            "last_step": last.to_dict() if last is not None else None,
        }

    def current_topk(self) -> List[RankedDCS]:
        """The maintained ranking as of the last answered step.

        With ``k>1`` this reads the live
        :class:`~repro.core.topk.IncrementalTopK` — including rank
        moves the gated policy's re-scoring made without a solve.  With
        ``k=1`` it wraps the single incumbent (empty before the first
        answer).
        """
        if self._topk is not None:
            return self._topk.as_ranked()
        base = self._incumbent if self._incumbent is not None else self._cached
        if base is None or base.empty:
            return []
        return [
            RankedDCS(
                rank=0,
                subset=set(base.subset),
                objective=base.score,
                embedding=dict(base.x) if base.x is not None else None,
            )
        ]

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, event: EdgeEvent) -> List[StreamAlert]:
        """Apply one event, closing any steps its timestamp skips past.

        Returns the alerts emitted by the steps that closed (often
        none).  Events must arrive in non-decreasing timestamp order.
        """
        if event.u not in self.universe:
            raise VertexNotFound(event.u)
        if event.v not in self.universe:
            raise VertexNotFound(event.v)
        if event.t < self.step:
            raise InputMismatchError(
                f"event at t={event.t} arrived after step {self.step} opened"
            )
        alerts: List[StreamAlert] = []
        while self.step < event.t:
            alert = self._close_step()
            if alert is not None:
                alerts.append(alert)
        self.stats.events += 1
        if self._accumulator.observe(event.key, event.w):
            self.stats.state_changes += 1
            self._dirty.event(event.u, event.v)
        return alerts

    def advance_to(self, step: int) -> List[StreamAlert]:
        """Close steps (emitting alerts) until *step* is the open step."""
        alerts: List[StreamAlert] = []
        while self.step < step:
            alert = self._close_step()
            if alert is not None:
                alerts.append(alert)
        return alerts

    def run(
        self, events: Iterable[EdgeEvent], n_steps: Optional[int] = None
    ) -> AlertLog:
        """Ingest a whole stream; close exactly *n_steps* steps.

        Events at or beyond the *n_steps* horizon are ignored (they
        belong to steps the caller asked not to close).  Without
        *n_steps* the stream ends after the last event's step is closed.
        """
        log = AlertLog()
        last = -1
        for event in events:
            if n_steps is not None and event.t >= n_steps:
                continue
            log.extend(self.ingest(event))
            last = event.t
        target = n_steps if n_steps is not None else last + 1
        log.extend(self.advance_to(target))
        return log

    # ------------------------------------------------------------------
    # the per-step close: deltas -> dirty region -> solve scheduling
    # ------------------------------------------------------------------
    def _close_step(self) -> Optional[StreamAlert]:
        t = self.step
        deltas = self._accumulator.close_step()
        for (u, v), value in deltas.items():
            if abs(value) <= self.prune_eps:
                value = 0.0
            old = self._diff.weight(u, v)
            if value == old:
                continue
            if self._mirror is not None:
                self._mirror.set_edge(u, v, value)
            else:
                self._diff.add_edge(u, v, value)
            self._dirty.touch(u, v)
            self.stats.diff_edits += 1
        self.stats.steps += 1
        if self._mirror is not None:
            self.stats.csr_patches = self._mirror.patches
            self.stats.csr_rebuilds = self._mirror.rebuilds
        if t < self.warmup:
            # Pre-warmup closes still settle the deltas, but nothing is
            # solved or emitted (the expectation is not trusted yet).
            return None
        # Dirty sizes must be read before _answer(): settling/resetting
        # the region is part of answering.
        touched = len(self._dirty.touched_since_answer)
        evented = len(self._dirty.evented_since_answer)
        since_full = len(self._dirty.evented_since_full)
        answer_start = time.perf_counter()
        outcome, source = self._answer()
        emitted = not (outcome.empty or outcome.score <= self.min_score)
        self._step_profiles.append(
            StepProfile(
                step=t,
                source=source,
                touched=touched,
                evented=evented,
                evented_since_full=since_full,
                seconds=time.perf_counter() - answer_start,
                emitted=emitted,
            )
        )
        if not emitted:
            return None
        return StreamAlert(
            step=t,
            subset=outcome.subset,
            score=outcome.score,
            measure=self.measure,
            source=source,
        )

    def _answer(self) -> Tuple[SolveOutcome, str]:
        if self._cached is not None and self._dirty.clean:
            self.stats.cache_hits += 1
            return self._cached, SOURCE_CACHE
        if self.policy == "exact" or self._incumbent is None:
            outcome = self._full_solve(warm=self.policy == "gated")
            return outcome, SOURCE_SOLVE
        return self._gated_answer()

    # -- exact path ----------------------------------------------------
    def _full_solve(self, warm: bool) -> SolveOutcome:
        if self._topk is not None:
            return self._full_solve_topk(warm)
        outcome = solve_difference(
            self._diff,
            self.measure,
            backend=self.backend,
            tol_scale=self.tol_scale,
            seed=self.seed,
        )
        if warm and self._incumbent is not None and not self._incumbent.empty:
            rescored = self._rescore(self._incumbent)
            if rescored is not None and rescored.score > outcome.score:
                # Greedy/NewSEA are heuristics: never regress below the
                # carried answer, which is still a valid subgraph.
                outcome = rescored
                self.stats.warm_start_wins += 1
        self.stats.full_solves += 1
        self._incumbent = outcome
        self._anchor_score = outcome.score
        self._cached = outcome
        self._dirty.reset()
        return outcome

    def _full_solve_topk(self, warm: bool) -> SolveOutcome:
        """Full top-k solve: replace the maintained ranking wholesale.

        With *warm* (the gated policy), the previous incumbents are
        re-scored on the updated difference and re-offered — the top-k
        analogue of the k=1 warm start: the greedy/NewSEA rounds are
        heuristics and must never regress below a carried answer that
        still scores better than what they found.
        """
        assert self._topk is not None
        outcomes = solve_difference_topk(
            self._diff,
            self.measure,
            self.k,
            backend=self.backend,
            tol_scale=self.tol_scale,
            seed=self.seed,
            strategy=self.topk_strategy,
        )
        carried = self._topk_outcomes() if warm else []
        self._topk.replace((o.subset, o.score, o.x) for o in outcomes)
        fresh_best = outcomes[0].subset if outcomes else None
        for previous in carried:
            rescored = self._rescore(previous)
            if rescored is not None:
                self._topk.offer(rescored.subset, rescored.score, rescored.x)
        best = self._topk_best_outcome()
        if fresh_best is not None and best.subset != fresh_best:
            self.stats.warm_start_wins += 1
        self.stats.full_solves += 1
        self._incumbent = best
        self._anchor_score = best.score
        self._cached = best
        self._dirty.reset()
        return best

    def _topk_outcomes(self) -> List[SolveOutcome]:
        """The maintained top-k entries as solve outcomes, rank order."""
        assert self._topk is not None
        return [
            SolveOutcome(
                subset=frozenset(item.subset),
                score=item.objective,
                x=item.embedding,
            )
            for item in self._topk.as_ranked()
        ]

    def _topk_best_outcome(self) -> SolveOutcome:
        assert self._topk is not None
        best = self._topk.best
        if best is None:
            return EMPTY_OUTCOME
        return SolveOutcome(
            subset=frozenset(best.subset),
            score=best.objective,
            x=best.embedding,
        )

    # -- gated path ----------------------------------------------------
    def _gated_answer(self) -> Tuple[SolveOutcome, str]:
        """The incumbent-gating decision tree.

        Full solves are forced by (in order): the cumulative event
        region outgrowing ``drift_ratio`` of the universe; new events
        inside the incumbent's closed neighbourhood (its structure
        changed); the incumbent's re-scored contrast decaying below
        ``hold_margin`` of its anchor; or a local probe of the evented
        region finding a challenger.  Otherwise the incumbent *subset*
        is held and emitted with its freshly re-scored contrast.
        """
        assert self._incumbent is not None
        if self._topk is not None:
            return self._gated_answer_topk()
        if (
            len(self._dirty.evented_since_full)
            > self.drift_ratio * len(self.universe)
        ):
            self.stats.drift_fallbacks += 1
            return self._full_solve(warm=True), SOURCE_SOLVE
        evented = self._dirty.evented_since_answer
        if evented & self._closed_neighborhood(self._incumbent.subset):
            return self._full_solve(warm=True), SOURCE_SOLVE
        rescored = self._rescore(self._incumbent)
        if rescored is None:
            # Nothing to hold (empty incumbent): any change warrants a solve.
            return self._full_solve(warm=True), SOURCE_SOLVE
        if rescored.score < self.hold_margin * self._anchor_score:
            self.stats.drift_fallbacks += 1
            return self._full_solve(warm=True), SOURCE_SOLVE
        if evented:
            probe = self._local_probe()
            if probe.score > rescored.score:
                self.stats.drift_fallbacks += 1
                return self._full_solve(warm=True), SOURCE_SOLVE
        self.stats.incumbent_holds += 1
        self._dirty.settle()
        self._incumbent = rescored
        self._cached = rescored
        return rescored, SOURCE_INCUMBENT

    def _gated_answer_topk(self) -> Tuple[SolveOutcome, str]:
        """The k>1 gating tree: every incumbent gets the k=1 treatment.

        Full solves are forced by the same triggers as k=1, widened to
        the whole maintained set — events inside *any* incumbent's
        closed neighbourhood, the *best* re-scored contrast decaying
        below ``hold_margin`` of the anchor, or a local probe beating
        the *k-th* re-scored score (a challenger need only displace the
        weakest incumbent to change the ranking).  A hold re-scores all
        k incumbents through :meth:`IncrementalTopK.rescore`, which
        re-sorts — so the emitted (rank-0) answer and the cached one
        always track membership changes, even score-order flips with no
        event anywhere near an incumbent.
        """
        assert self._topk is not None
        if (
            len(self._dirty.evented_since_full)
            > self.drift_ratio * len(self.universe)
        ):
            self.stats.drift_fallbacks += 1
            return self._full_solve(warm=True), SOURCE_SOLVE
        incumbents = self._topk_outcomes()
        if not incumbents:
            return self._full_solve(warm=True), SOURCE_SOLVE
        evented = self._dirty.evented_since_answer
        region: Set[Vertex] = set()
        for incumbent in incumbents:
            region |= self._closed_neighborhood(incumbent.subset)
        if evented & region:
            return self._full_solve(warm=True), SOURCE_SOLVE
        rescored: Dict[FrozenSet[Vertex], SolveOutcome] = {}
        for incumbent in incumbents:
            fresh = self._rescore(incumbent)
            if fresh is None:
                return self._full_solve(warm=True), SOURCE_SOLVE
            rescored[incumbent.subset] = fresh
        best_score = max(o.score for o in rescored.values())
        if best_score < self.hold_margin * self._anchor_score:
            self.stats.drift_fallbacks += 1
            return self._full_solve(warm=True), SOURCE_SOLVE
        if evented:
            probe = self._local_probe()
            floor = (
                min(o.score for o in rescored.values())
                if len(rescored) >= self.k
                else 0.0
            )
            if probe.score > floor:
                self.stats.drift_fallbacks += 1
                return self._full_solve(warm=True), SOURCE_SOLVE
        self.stats.incumbent_holds += 1
        self._dirty.settle()
        self._topk.rescore(
            lambda subset: rescored[subset].score
            if subset in rescored
            else None
        )
        best = self._topk_best_outcome()
        self._incumbent = best
        self._cached = best
        return best, SOURCE_INCUMBENT

    def _closed_neighborhood(self, subset: Iterable[Vertex]) -> Set[Vertex]:
        members = set(subset)
        closed = set(members)
        for vertex in members:
            closed.update(self._diff.neighbors(vertex))
        return closed

    def _local_probe(self) -> SolveOutcome:
        region = self._closed_neighborhood(self._dirty.evented_since_full)
        self.stats.local_probes += 1
        return solve_difference(
            self._diff.subgraph(region & self.universe),
            self.measure,
            backend=self.backend,
            tol_scale=self.tol_scale,
            seed=self.seed,
        )

    def _rescore(self, incumbent: SolveOutcome) -> Optional[SolveOutcome]:
        """Re-evaluate a carried answer's score on the current difference.

        Average degree: the exact ``W(S) / |S|`` of the held subset on
        the updated graph (vectorised through the CSR mirror when the
        sparse backend is active — the patched ``data`` array makes this
        a submatrix sum, no rebuild).  Affinity: ``x^T D x`` with the
        carried embedding — exact for the carried ``x``, a lower bound
        on what a re-optimised embedding would score.
        """
        if incumbent.empty:
            return None
        self.stats.rescores += 1
        subset = incumbent.subset
        if self.measure == "average_degree":
            if self._mirror is not None:
                total = self._mirror.subset_degree(sorted(subset, key=repr))
            else:
                total = self._diff.total_degree(subset)
            return SolveOutcome(subset=subset, score=total / len(subset))
        x = incumbent.x or {}
        score = 0.0
        for u in subset:
            xu = x.get(u, 0.0)
            if xu == 0.0:
                continue
            for v, weight in self._diff.neighbors(u).items():
                xv = x.get(v, 0.0)
                if xv != 0.0:
                    score += weight * xu * xv
        return SolveOutcome(subset=subset, score=score, x=incumbent.x)


def replay_events(
    log,
    n_steps: Optional[int] = None,
    universe: Optional[Iterable[Vertex]] = None,
    **engine_params,
) -> Tuple[AlertLog, EngineStats]:
    """One-shot replay: build an engine, run a whole event log, return
    ``(alerts, stats)``.

    *log* is an :class:`~repro.stream.events.EventLog` (its declared
    universe is used unless *universe* overrides it).  All remaining
    keyword arguments configure :class:`StreamingDCSEngine`.  This is
    the entry point shared by ``repro stream`` and the batch layer's
    ``stream_replay`` queries — both replay a recorded log and care only
    about the final alert set and the engine counters.
    """
    members = set(universe) if universe is not None else set(log.universe)
    if not members:
        raise ValueError("event log declares no vertices and has no events")
    engine = StreamingDCSEngine(members, **engine_params)
    alerts = engine.run(log.events, n_steps=n_steps)
    return alerts, engine.stats


# ----------------------------------------------------------------------
# the naive reference: full snapshot recompute, every step
# ----------------------------------------------------------------------
def snapshot_recompute(
    events: Iterable[EdgeEvent],
    universe: Iterable[Vertex],
    n_steps: Optional[int] = None,
    window: int = 5,
    measure: Measure = "average_degree",
    warmup: Optional[int] = None,
    backend: str = "python",
    min_score: float = 0.0,
    tol_scale: float = 1e-2,
    prune_eps: float = PRUNE_EPS,
    seed: int = 0,
) -> AlertLog:
    """Per-step snapshot recompute — the ContrastMonitor loop over events.

    Every step materialises the full snapshot, rebuilds the window mean
    with :func:`~repro.core.monitor.mean_graph`, rebuilds the difference
    graph with :func:`~repro.core.difference.difference_graph`, and runs
    the full solver.  ``O(window * m)`` per step regardless of how few
    edges changed — the baseline the incremental engine is gated
    against (same :func:`solve_difference`, so alert parity is a
    property of the *maintenance*, which is the claim under test).
    """
    members = set(universe)
    if not members:
        raise ValueError("universe must not be empty")
    if warmup is None:
        warmup = window
    warmup = max(1, warmup)

    state = Graph()
    state.add_vertices(members)
    history: Deque[Graph] = deque(maxlen=window)
    log = AlertLog()

    grouped: Dict[int, List[EdgeEvent]] = {}
    last = -1
    for event in events:
        if event.u not in members:
            raise VertexNotFound(event.u)
        if event.v not in members:
            raise VertexNotFound(event.v)
        grouped.setdefault(event.t, []).append(event)
        last = max(last, event.t)
    total_steps = n_steps if n_steps is not None else last + 1

    for step in range(total_steps):
        for event in grouped.get(step, ()):
            state.add_edge(event.u, event.v, event.w)
        if history and step >= warmup:
            expected = mean_graph(history, backend=backend)
            diff = difference_graph(expected, state)
            diff = diff.map_weights(
                lambda w: 0.0 if abs(w) <= prune_eps else w
            )
            outcome = solve_difference(
                diff, measure, backend=backend, tol_scale=tol_scale, seed=seed
            )
            if not outcome.empty and outcome.score > min_score:
                log.append(
                    StreamAlert(
                        step=step,
                        subset=outcome.subset,
                        score=outcome.score,
                        measure=measure,
                        source=SOURCE_SOLVE,
                    )
                )
        history.append(state.copy())
    return log
