"""Alert pipeline: typed alerts, a collecting log, JSON serialisation.

The engine's output contract mirrors the batch
:class:`~repro.core.monitor.ContrastAlert`, extended with streaming
provenance: which path produced the answer (a full solve, the cached
previous solve, or a carried incumbent) so operators and benchmarks can
see the incremental machinery working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.graph.graph import Vertex

#: Provenance of an alert's answer.
SOURCE_SOLVE = "solve"        # fresh full solve this step
SOURCE_CACHE = "cache"        # difference graph unchanged; previous solve reused
SOURCE_INCUMBENT = "incumbent"  # gated policy kept the incumbent answer


@dataclass(frozen=True)
class StreamAlert:
    """One emitted anomaly: the flagged subgraph of a closed step."""

    step: int
    subset: FrozenSet[Vertex]
    score: float
    measure: str
    source: str = SOURCE_SOLVE

    def exceeds(self, threshold: float) -> bool:
        """Whether the contrast is above an alerting threshold."""
        return self.score > threshold

    @property
    def key(self) -> Tuple[int, FrozenSet[Vertex]]:
        """Identity for cross-engine parity comparison."""
        return (self.step, self.subset)

    def to_json(self) -> str:
        """One-line JSON record (the ``repro stream`` output format)."""
        return json.dumps(
            {
                "step": self.step,
                "score": self.score,
                "size": len(self.subset),
                "subset": sorted(str(v) for v in self.subset),
                "measure": self.measure,
                "source": self.source,
            },
            sort_keys=True,
        )


class AlertLog:
    """An ordered collection of alerts with pipeline conveniences."""

    def __init__(self, alerts: Iterable[StreamAlert] = ()) -> None:
        self._alerts: List[StreamAlert] = list(alerts)

    def append(self, alert: StreamAlert) -> None:
        self._alerts.append(alert)

    def extend(self, alerts: Iterable[StreamAlert]) -> None:
        self._alerts.extend(alerts)

    def __len__(self) -> int:
        return len(self._alerts)

    def __iter__(self) -> Iterator[StreamAlert]:
        return iter(self._alerts)

    def __getitem__(self, index: int) -> StreamAlert:
        return self._alerts[index]

    @property
    def steps(self) -> List[int]:
        """Steps that raised an alert, in emission order."""
        return [alert.step for alert in self._alerts]

    def fired(self, threshold: float) -> "AlertLog":
        """The sub-log of alerts whose score exceeds *threshold*."""
        return AlertLog(a for a in self._alerts if a.exceeds(threshold))

    def json_lines(self) -> str:
        """All alerts as newline-delimited JSON."""
        return "\n".join(alert.to_json() for alert in self._alerts)


def alert_keys(alerts: Iterable[StreamAlert]) -> Set[Tuple[int, FrozenSet[Vertex]]]:
    """The ``(step, subset)`` identity set — the unit of alert parity.

    Two monitoring runs are *alert-equivalent* when these sets match
    (scores are compared separately, with float tolerance, because the
    incremental and rebuilt difference weights can differ in the last
    ulps).
    """
    return {alert.key for alert in alerts}
