"""Incremental streaming DCS — serve contrast answers over edge events.

The batch pipeline answers "what changed between these two graphs?";
this package answers it *continuously*: a live network emits
:class:`~repro.stream.events.EdgeEvent` observations, and the
:class:`~repro.stream.engine.StreamingDCSEngine` maintains the
expectation graph, the difference graph, and the DCS answer by deltas
instead of per-step rebuilds.

Data flow::

    EdgeEvent ──► SlidingWindowAccumulator ──► difference deltas
                      (window sums by             │
                       change-point segments)     ▼
                                            DirtyRegion
                                                  │
                                                  ▼
                               solve scheduling (cache / gated / full)
                                                  │
                                                  ▼
                                      StreamAlert ──► AlertLog / JSON

Entry points: :class:`StreamingDCSEngine` (the engine),
:func:`snapshot_recompute` (the naive full-rebuild reference used for
parity gating), :func:`read_events` / :func:`write_events` (the
``repro stream`` file format).
"""

from repro.stream.alerts import (
    SOURCE_CACHE,
    SOURCE_INCUMBENT,
    SOURCE_SOLVE,
    AlertLog,
    StreamAlert,
    alert_keys,
)
from repro.stream.engine import (
    DirtyRegion,
    EngineStats,
    SolveOutcome,
    StreamingDCSEngine,
    replay_events,
    snapshot_recompute,
    solve_difference,
    solve_difference_topk,
)
from repro.stream.events import (
    EdgeEvent,
    EventLog,
    edge_key,
    events_between,
    group_by_step,
    read_events,
    write_events,
)
from repro.stream.window import SlidingWindowAccumulator

__all__ = [
    "SOURCE_CACHE",
    "SOURCE_INCUMBENT",
    "SOURCE_SOLVE",
    "AlertLog",
    "StreamAlert",
    "alert_keys",
    "DirtyRegion",
    "EngineStats",
    "SolveOutcome",
    "StreamingDCSEngine",
    "replay_events",
    "snapshot_recompute",
    "solve_difference",
    "solve_difference_topk",
    "EdgeEvent",
    "EventLog",
    "edge_key",
    "events_between",
    "group_by_step",
    "read_events",
    "write_events",
    "SlidingWindowAccumulator",
]
