"""Sliding-window accumulator: per-edge window sums under event deltas.

The batch monitor rebuilds ``mean(history)`` and ``D = A2 - A1`` from
scratch every step — ``O(window * m)`` work even when nothing changed.
This module maintains the same quantities *incrementally*:

* The **persistent state** ``A2``: each edge keeps its last observed
  strength (events override it, ``0`` deletes).
* A per-edge **change-point history**: an edge whose strength changed
  within window reach is *active* and carries the list of
  ``(step, value)`` segments needed to evaluate its window sum exactly.
  Everything else is *stable* — its window mean equals its current
  strength by construction, so its difference weight is **exactly** 0
  and it costs nothing per step.

Closing a step therefore touches only the active edges: each window sum
is a handful of segment-overlap products, old segments expire
(insertions and expiries are both just list surgery on the change
points), and an edge whose history collapses to a single segment
*retires* back to stable with a guaranteed-zero difference — no floating
drift, because the stable case is never computed as ``(L * w) / L``.

The accumulated per-step output is the set of **difference deltas**:
``close_step`` returns the new difference weight ``A2(e) - mean(e)`` for
every active edge, which is exactly the edit list the engine applies to
its maintained difference graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.graph.graph import Graph, Vertex

EdgeKey = Tuple[Vertex, Vertex]

#: Sentinel start for the segment that predates every closed step.
_SINCE_FOREVER = -1


class SlidingWindowAccumulator:
    """Incremental window sums for a stream of persistent edge updates.

    Usage protocol, one *step* at a time:

    1. call :meth:`observe` for each event of the open step;
    2. call :meth:`close_step`, which finalises the step, slides the
       window, and returns ``{edge_key: new difference weight}`` for
       every edge whose difference may have moved (``0.0`` entries mean
       the edge returned to stable — remove it).

    The window at the close of step ``t`` covers steps
    ``[t - L, t)`` with ``L = min(window, t)`` — the same "mean of the
    last ``window`` snapshots, fewer during warmup" convention as
    :class:`repro.core.monitor.ContrastMonitor`.
    """

    __slots__ = ("window", "_state", "_history", "_steps", "_last_sums", "_last_length")

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        #: current persistent strengths (nonzero only)
        self._state: Dict[EdgeKey, float] = {}
        #: change points of active edges: [(step, value), ...]; the first
        #: segment's step may be _SINCE_FOREVER, the last value always
        #: equals the current state.
        self._history: Dict[EdgeKey, List[Tuple[int, float]]] = {}
        self._steps = 0
        self._last_sums: Dict[EdgeKey, float] = {}
        self._last_length = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def steps_closed(self) -> int:
        """Number of closed steps; also the index of the open step."""
        return self._steps

    @property
    def active_edges(self) -> int:
        """How many edges currently carry change-point history."""
        return len(self._history)

    def state_weight(self, key: EdgeKey) -> float:
        """Current persistent strength of *key* (0 = no edge)."""
        return self._state.get(key, 0.0)

    def state_graph(self, vertices: Iterable[Vertex]) -> Graph:
        """Materialise the current snapshot over *vertices* (O(m))."""
        graph = Graph()
        graph.add_vertices(vertices)
        for (u, v), weight in self._state.items():
            graph.add_edge(u, v, weight)
        return graph

    # ------------------------------------------------------------------
    # ingestion (open step)
    # ------------------------------------------------------------------
    def observe(self, key: EdgeKey, weight: float) -> bool:
        """Record that *key* was observed at strength *weight* this step.

        Returns whether the persistent state actually changed (re-observing
        the current strength is a no-op).
        """
        step = self._steps
        old = self._state.get(key, 0.0)
        history = self._history.get(key)
        if history is None:
            if weight == old:
                return False
            self._history[key] = [(_SINCE_FOREVER, old), (step, weight)]
        elif history[-1][0] == step:
            # Second event for the same pair within one step: override.
            if weight == history[-1][1]:
                return False
            if len(history) > 1 and history[-2][1] == weight:
                history.pop()  # the override cancelled this change point
            else:
                history[-1] = (step, weight)
        else:
            if weight == history[-1][1]:
                return False
            history.append((step, weight))
        if weight == 0.0:
            self._state.pop(key, None)
        else:
            self._state[key] = weight
        return True

    # ------------------------------------------------------------------
    # step close (slide the window)
    # ------------------------------------------------------------------
    def close_step(self) -> Dict[EdgeKey, float]:
        """Finalise the open step and return the difference deltas.

        For every active edge the returned mapping holds its new
        difference weight ``state - window_mean`` (``0.0`` when the edge
        retired to stable).  Stable edges never appear: their difference
        is exactly 0 by construction.
        """
        t = self._steps
        length = min(self.window, t)
        window_start = t - length
        deltas: Dict[EdgeKey, float] = {}
        sums: Dict[EdgeKey, float] = {}
        retired: List[EdgeKey] = []
        for key, history in self._history.items():
            # Expire segments that end at or before the window start.
            drop = 0
            while drop + 1 < len(history) and history[drop + 1][0] <= window_start:
                drop += 1
            if drop:
                del history[:drop]
            if len(history) == 1:
                # Constant over the window *and* no pending change point:
                # the mean equals the state exactly — retire to stable.
                deltas[key] = 0.0
                retired.append(key)
                continue
            if length == 0:
                continue  # warming up: no expectation exists yet
            total = 0.0
            for position, (start, value) in enumerate(history):
                end = history[position + 1][0] if position + 1 < len(history) else t
                overlap = min(end, t) - max(start, window_start)
                if overlap > 0:
                    total += value * overlap
            sums[key] = total
            deltas[key] = self._state.get(key, 0.0) - total / length
        for key in retired:
            del self._history[key]
        self._last_sums = sums
        self._last_length = length
        self._steps = t + 1
        return deltas

    # ------------------------------------------------------------------
    # inspection (parity tests, naive cross-checks)
    # ------------------------------------------------------------------
    def window_sum(self, key: EdgeKey) -> float:
        """Window sum of *key* as of the last :meth:`close_step`.

        Stable edges report ``length * state`` — algebraically what the
        segments would sum to (the incremental path never computes it).
        """
        if key in self._last_sums:
            return self._last_sums[key]
        return self._last_length * self._state.get(key, 0.0)

    @property
    def window_length(self) -> int:
        """The ``L`` used by the last :meth:`close_step`."""
        return self._last_length

    def expectation_weight(self, key: EdgeKey) -> float:
        """Window-mean strength of *key* as of the last close."""
        if self._last_length == 0:
            return 0.0
        if key in self._last_sums:
            return self._last_sums[key] / self._last_length
        return self._state.get(key, 0.0)

    def expectation_graph(self, vertices: Iterable[Vertex]) -> Graph:
        """Materialise the expectation graph as of the last close (O(m)).

        Provided for cross-checking against
        :func:`repro.core.monitor.mean_graph`; the engine itself never
        builds this.
        """
        graph = Graph()
        graph.add_vertices(vertices)
        if self._last_length == 0:
            return graph
        for key in set(self._state) | set(self._last_sums):
            weight = self.expectation_weight(key)
            if weight != 0.0:
                graph.add_edge(key[0], key[1], weight)
        return graph
