"""Edge events — the unit of ingestion for the streaming DCS engine.

The batch pipeline contrasts two *whole graphs*; a live network instead
emits a stream of **observations**: at (integer) step ``t`` the observed
connection strength of the pair ``(u, v)`` is ``w``.  An
:class:`EdgeEvent` records exactly that.  Semantics:

* ``w`` is the **absolute** observed strength (the paper's "current
  pairwise connection strength"), not a delta — re-observing an
  unchanged edge is a no-op, and ``w = 0`` means the connection is gone.
* Strengths **persist** between observations: an edge keeps its last
  observed weight until a new event overrides it.  A step's snapshot is
  therefore the current persistent state, and only evented pairs differ
  from the previous step — the sparsity the incremental engine exploits.
* Timestamps are non-decreasing integers; gaps are legal (the engine
  closes the intermediate steps with no events).

The module also provides the event-file format used by ``repro stream``
(whitespace lines, mirroring :mod:`repro.graph.io`)::

    # repro event log: t u v w
    0 alice bob 1.5
    3 alice bob 4.0
    carol              <- bare token: declare an isolated vertex

and :func:`events_between`, which diffs two snapshots into the event
batch that transforms one into the other — the bridge from the
snapshot-stream world of :mod:`repro.datasets.temporal` into the event
world (and the basis of the monitor-parity tests).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    TextIO,
    Tuple,
    Union,
)

from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph, Vertex

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True, order=True)
class EdgeEvent:
    """One observation: at step *t*, pair ``(u, v)`` has strength *w*.

    Ordering is by timestamp first (then endpoints/weight), so a sorted
    list of events is a valid stream.
    """

    t: int
    u: Vertex
    v: Vertex
    w: float

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise InputMismatchError(
                f"event at t={self.t} is a self loop on {self.u!r}"
            )
        if self.t < 0:
            raise InputMismatchError(f"negative timestamp {self.t}")
        if self.w != self.w or self.w in (float("inf"), float("-inf")):
            raise InputMismatchError(
                f"event ({self.u!r}, {self.v!r}) at t={self.t} has "
                f"non-finite weight {self.w!r}"
            )

    @property
    def key(self) -> Tuple[Vertex, Vertex]:
        """Canonical undirected edge key (endpoints sorted by ``repr``)."""
        return edge_key(self.u, self.v)


def edge_key(u: Vertex, v: Vertex) -> Tuple[Vertex, Vertex]:
    """Canonical undirected key for a vertex pair."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class EventLog:
    """A parsed event file: the events plus the declared vertex universe.

    ``universe`` contains every declared isolated vertex *and* every
    event endpoint, so it is the fixed vertex set of the DCS problem the
    stream defines.
    """

    events: List[EdgeEvent] = field(default_factory=list)
    declared: Set[Vertex] = field(default_factory=set)

    @property
    def universe(self) -> Set[Vertex]:
        members = set(self.declared)
        for event in self.events:
            members.add(event.u)
            members.add(event.v)
        return members

    @property
    def last_step(self) -> int:
        return self.events[-1].t if self.events else -1


def validate_monotone(events: Iterable[EdgeEvent]) -> Iterator[EdgeEvent]:
    """Yield *events*, raising if timestamps ever decrease."""
    previous = -1
    for event in events:
        if event.t < previous:
            raise InputMismatchError(
                f"event timestamps must be non-decreasing: "
                f"{event.t} after {previous}"
            )
        previous = event.t
        yield event


def group_by_step(
    events: Iterable[EdgeEvent],
) -> Iterator[Tuple[int, List[EdgeEvent]]]:
    """Group a monotone stream into ``(t, batch)`` pairs, in step order.

    Steps with no events are *not* emitted; the consumer decides how to
    advance across gaps (the engine closes them one by one).
    """
    batch: List[EdgeEvent] = []
    current: Optional[int] = None
    for event in validate_monotone(events):
        if current is None or event.t == current:
            current = event.t
            batch.append(event)
        else:
            yield current, batch
            current, batch = event.t, [event]
    if batch:
        assert current is not None
        yield current, batch


def events_between(
    previous: Graph, current: Graph, t: int
) -> List[EdgeEvent]:
    """The event batch turning snapshot *previous* into snapshot *current*.

    Emits one event per pair whose weight differs (including weight-0
    events for edges that vanished).  Feeding a snapshot stream through
    this converter reproduces the snapshot semantics of
    :class:`repro.core.monitor.ContrastMonitor` event-by-event.
    """
    batch: List[EdgeEvent] = []
    for u, v, weight in current.edges():
        if previous.weight(u, v) != weight:
            batch.append(EdgeEvent(t=t, u=u, v=v, w=weight))
    for u, v, _ in previous.edges():
        if not current.has_edge(u, v):
            batch.append(EdgeEvent(t=t, u=u, v=v, w=0.0))
    batch.sort()
    return batch


# ----------------------------------------------------------------------
# event-file serialisation (the ``repro stream`` input format)
# ----------------------------------------------------------------------
def write_events(
    log: EventLog, destination: Union[PathLike, TextIO]
) -> None:
    """Write an :class:`EventLog` as ``t u v w`` lines."""
    if hasattr(destination, "write"):
        _write_stream(log, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as stream:
        _write_stream(log, stream)


def _token(vertex: Vertex) -> str:
    text = str(vertex)
    if not text or any(ch.isspace() for ch in text):
        raise InputMismatchError(
            f"vertex label {vertex!r} cannot be serialised: "
            "labels must be non-empty and contain no whitespace"
        )
    return text


def _write_stream(log: EventLog, stream: TextIO) -> None:
    stream.write("# repro event log: t u v w\n")
    touched: Set[Vertex] = set()
    for event in log.events:
        stream.write(
            f"{event.t} {_token(event.u)} {_token(event.v)} {event.w!r}\n"
        )
        touched.add(event.u)
        touched.add(event.v)
    for vertex in sorted(log.declared - touched, key=repr):
        stream.write(f"{_token(vertex)}\n")


def read_events(
    source: Union[PathLike, TextIO],
    parser: Optional[Callable[[str], Vertex]] = None,
) -> EventLog:
    """Parse an event file written by :func:`write_events`.

    Lines: ``t u v w`` events, bare ``u`` isolated-vertex declarations,
    ``#`` comments.  Timestamps must be non-decreasing.  *parser*
    converts vertex tokens (default: keep as ``str``).
    """
    if hasattr(source, "read"):
        return _read_stream(source, parser)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as stream:
        return _read_stream(stream, parser)


def _read_stream(
    stream: TextIO, parser: Optional[Callable[[str], Vertex]]
) -> EventLog:
    convert = parser if parser is not None else (lambda token: token)
    log = EventLog()
    previous = -1
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 1:
            log.declared.add(convert(parts[0]))
            continue
        if len(parts) != 4:
            raise InputMismatchError(
                f"line {lineno}: expected 't u v w' or 'u', got {line!r}"
            )
        try:
            t = int(parts[0])
        except ValueError:
            raise InputMismatchError(
                f"line {lineno}: bad timestamp {parts[0]!r}"
            ) from None
        try:
            w = float(parts[3])
        except ValueError:
            raise InputMismatchError(
                f"line {lineno}: bad weight {parts[3]!r}"
            ) from None
        if t < previous:
            raise InputMismatchError(
                f"line {lineno}: timestamp {t} decreases (previous {previous})"
            )
        previous = t
        log.events.append(
            EdgeEvent(t=t, u=convert(parts[1]), v=convert(parts[2]), w=w)
        )
    return log
