"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Structural error on a graph (missing vertex, bad edge, ...)."""


class VertexNotFound(GraphError, KeyError):
    """A vertex referenced by an operation is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFound(GraphError, KeyError):
    """An edge referenced by an operation is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """Self loops are not allowed: affinity matrices have zero diagonals."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class EmbeddingError(ReproError, ValueError):
    """A subgraph embedding violates the simplex constraints."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its iteration budget before converging."""

    def __init__(self, message: str, iterations: int) -> None:
        super().__init__(message)
        self.iterations = iterations


class InputMismatchError(ReproError, ValueError):
    """Two inputs that must agree (e.g. vertex sets of G1 and G2) do not."""


class BackendUnavailableError(ReproError, RuntimeError):
    """A compute backend was requested but its dependency is missing.

    Raised when ``backend="sparse"`` is selected and SciPy cannot be
    imported; the pure-Python reference backend is always available.
    """


class BackendFallbackWarning(RuntimeWarning):
    """A requested backend was unavailable and a substitute was used.

    Emitted (once per requested/fallback pair per process) by
    :func:`repro.engine.resolve_backend` when its ``fallback=`` path
    fires — e.g. ``resolve_backend("native", fallback="sparse")``
    without Numba installed.  A warning rather than an error: the
    caller opted into graceful degradation, but silent degradation
    would make performance regressions invisible.
    """


class UnknownBackendError(ReproError, ValueError):
    """A backend name is not registered in the engine's backend registry.

    Subclasses :class:`ValueError` so callers that predate the registry
    (``except ValueError``) keep working.
    """

    def __init__(self, name: object, known: tuple = ()) -> None:
        suffix = (
            f"; registered backends: {', '.join(sorted(known))}"
            if known
            else ""
        )
        super().__init__(f"unknown backend {name!r}{suffix}")
        self.name = name
        self.known = tuple(known)


class BackendCapabilityError(ReproError, ValueError):
    """A registered backend does not implement the requested capability.

    E.g. the ``segment_tree`` backend only provides peeling; asking it
    for SEACD raises this.  Subclasses :class:`ValueError` to match the
    pre-registry dispatch errors.
    """

    def __init__(self, backend: str, capability: str) -> None:
        super().__init__(
            f"backend {backend!r} does not implement {capability!r}"
        )
        self.backend = backend
        self.capability = capability

