"""The original SEA algorithm [18] — the paper's DCSGA baseline.

Identical skeleton to SEACD (shrink to a local KKT point, then expand),
but the shrink stage is replicator dynamics with the **loose**
convergence condition of [18]: stop when one iteration improves the
objective by less than ``1e-6``.  Because that condition can fire before
a local KKT point is reached, the subsequent expansion step — whose
correctness *assumes* a local KKT point — sometimes decreases the
objective.  The paper calls these events *errors in Expansion* and
reports their counts in Table VII and their rate in Fig. 2b; this
implementation detects and counts them the same way.

``sea_refine_solver`` packages SEA + Refinement in the per-vertex solver
signature of :func:`repro.core.newsea.solve_all_initializations`, so the
*SEA+Refine* baseline reuses the same all-inits driver as SEACD+Refine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.affinity.replicator import ConvergenceRule, replicator_dynamics
from repro.core.expansion import expansion_step
from repro.core.refinement import refine
from repro.graph.graph import Graph, Vertex


@dataclass
class SEAStats:
    """Counters for one original-SEA run."""

    shrink_calls: int = 0
    shrink_iterations: int = 0
    expansions: int = 0
    expansion_errors: int = 0
    objective_trace: List[float] = field(default_factory=list)


@dataclass
class SEAResult:
    """Final iterate of the original SEA algorithm."""

    x: Dict[Vertex, float]
    objective: float
    converged: bool
    stats: SEAStats


def sea(
    graph: Graph,
    x0: Dict[Vertex, float],
    shrink_rule: ConvergenceRule = "objective",
    shrink_tol: float = 1e-6,
    max_expansions: int = 10_000,
    max_replicator_iterations: int = 100_000,
) -> SEAResult:
    """Run the original SEA from *x0* on a nonnegative-weight graph.

    Defaults reproduce the paper's experimental configuration for
    *SEA+Refine*: ``shrink_rule="objective"`` with ``1e-6`` improvement
    threshold.  Pass ``shrink_rule="gradient"`` for the strict-condition
    ablation (much slower, no expansion errors).
    """
    stats = SEAStats()
    x = {u: w for u, w in x0.items() if w > 0.0}
    if not x:
        raise ValueError("initial embedding has empty support")

    converged = False
    objective = 0.0
    while stats.expansions < max_expansions:
        shrink = replicator_dynamics(
            graph,
            x,
            rule=shrink_rule,
            tol=shrink_tol,
            max_iterations=max_replicator_iterations,
        )
        stats.shrink_calls += 1
        stats.shrink_iterations += shrink.iterations
        x = shrink.x
        objective = shrink.objective
        stats.objective_trace.append(objective)

        # The original SEA computes the expansion under the premise that
        # every support gradient equals lambda — see the lambda_mode docs
        # in repro.core.expansion for why this is what makes the loose
        # shrink condition produce expansion errors.
        step = expansion_step(
            graph, x, objective=objective, lambda_mode="min_support_gradient"
        )
        if not step.expanded:
            converged = True
            break
        if step.decreased:
            # The loose shrink condition did not reach a local KKT point,
            # so the expansion direction was computed from a wrong premise
            # and the objective dropped — the paper's "error in Expansion".
            stats.expansion_errors += 1
        x = step.x
        objective = step.objective_after
        stats.expansions += 1

    return SEAResult(x=x, objective=objective, converged=converged, stats=stats)


def sea_refine_solver(
    shrink_rule: ConvergenceRule = "objective",
    shrink_tol: float = 1e-6,
    max_expansions: int = 10_000,
    refinement_tol_scale: float = 1e-2,
):
    """A per-vertex *SEA+Refine* solver for the all-inits driver.

    Returns a callable ``(graph, vertex) -> (x, objective, errors)``
    compatible with
    :func:`repro.core.newsea.solve_all_initializations`.
    """

    def solve(graph: Graph, vertex: Vertex) -> Tuple[Dict[Vertex, float], float, int]:
        result = sea(
            graph,
            {vertex: 1.0},
            shrink_rule=shrink_rule,
            shrink_tol=shrink_tol,
            max_expansions=max_expansions,
        )
        refined = refine(graph, result.x, tol_scale=refinement_tol_scale)
        return refined.x, refined.objective, result.stats.expansion_errors

    return solve
