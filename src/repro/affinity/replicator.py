"""Replicator dynamics — the shrink stage of the original SEA [18].

The replicator equation (Eq. 12 of the paper's appendix)

    ``x_i(t+1) = x_i(t) * (Dx)_i / (x^T D x)``

increases ``x^T D x`` monotonically when ``D`` is nonnegative (a
consequence of the Baum–Eagon inequality) — which is why the original SEA
only runs on nonnegative matrices, and why the paper replaces it with
2-coordinate descent for signed difference graphs.

Two convergence conditions are offered:

* ``"objective"`` (the paper-faithful *loose* condition of [18]): stop
  when one iteration improves ``f`` by less than ``tol``.  This often
  stops **before** a local KKT point is reached, which is precisely what
  causes the expansion errors the paper reports in Table VII / Fig. 2b.
* ``"gradient"`` (the correct condition, Eq. 11): stop when
  ``max grad - min grad <= tol`` on the support — slow for replicator
  dynamics, included for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Set

from repro.engine.registry import BackendLike, resolve_backend
from repro.graph.graph import Graph, Vertex

ConvergenceRule = Literal["objective", "gradient"]

#: Entries decayed below this are pruned from the support (replicator
#: dynamics only reach zero asymptotically).
PRUNE_EPS = 1e-15


@dataclass
class ReplicatorResult:
    """Outcome of a replicator-dynamics shrink run."""

    x: Dict[Vertex, float]
    objective: float
    iterations: int
    converged: bool


def _dx_map(
    graph: Graph, x: Dict[Vertex, float], members: Set[Vertex]
) -> Dict[Vertex, float]:
    out: Dict[Vertex, float] = {}
    for k in members:
        total = 0.0
        for neighbor, weight in graph.neighbors(k).items():
            xv = x.get(neighbor)
            if xv is not None:
                total += weight * xv
        out[k] = total
    return out


def replicator_dynamics(
    graph: Graph,
    x0: Dict[Vertex, float],
    rule: ConvergenceRule = "objective",
    tol: float = 1e-6,
    max_iterations: int = 100_000,
    backend: BackendLike = "python",
) -> ReplicatorResult:
    """Iterate Eq. 12 from *x0* until the chosen convergence rule fires.

    The graph must have nonnegative weights (checked lazily: a negative
    ``(Dx)_i`` aborts with ``ValueError``, since the multiplicative
    update would leave the simplex).

    The support can only shrink: a zero entry stays zero, and entries
    below :data:`PRUNE_EPS` are dropped (with renormalisation).

    *backend* resolves through the engine registry; ``"sparse"`` runs
    the same iteration as dense-vector algebra over a CSR matrix — the
    whole update is two sparse matrix-vector products per step instead
    of per-vertex dict loops.
    """
    return resolve_backend(backend).replicator(
        graph, x0, rule=rule, tol=tol, max_iterations=max_iterations
    )


def _replicator_python(
    graph: Graph,
    x0: Dict[Vertex, float],
    rule: ConvergenceRule,
    tol: float,
    max_iterations: int,
) -> ReplicatorResult:
    """The reference implementation behind the ``python`` backend."""
    x = {u: w for u, w in x0.items() if w > 0.0}
    if not x:
        raise ValueError("initial embedding has empty support")

    iterations = 0
    converged = False
    objective = _objective(graph, x)
    while iterations < max_iterations:
        support = set(x)
        dx = _dx_map(graph, x, support)
        if objective <= 0.0:
            # f == 0: single vertex or edgeless support — the replicator
            # update is 0/0; the point is trivially a local KKT point.
            converged = True
            break
        if rule == "gradient":
            grads = [2.0 * dx[k] for k in support]
            if max(grads) - min(grads) <= tol:
                converged = True
                break

        new_x: Dict[Vertex, float] = {}
        for u, w in x.items():
            numerator = dx[u]
            if numerator < 0.0:
                raise ValueError(
                    "replicator dynamics requires nonnegative weights; "
                    "run it on GD+, not GD"
                )
            value = w * numerator / objective
            if value > PRUNE_EPS:
                new_x[u] = value
        if not new_x:
            # All mass decayed (possible only with zero gradients).
            converged = True
            break
        total = sum(new_x.values())
        if abs(total - 1.0) > 1e-15:
            for u in new_x:
                new_x[u] /= total

        new_objective = _objective(graph, new_x)
        iterations += 1
        improvement = new_objective - objective
        x, objective = new_x, new_objective
        if rule == "objective" and improvement < tol:
            converged = True
            break

    return ReplicatorResult(
        x=x,
        objective=objective,
        iterations=iterations,
        converged=converged,
    )


def _replicator_sparse(
    graph: Graph,
    x0: Dict[Vertex, float],
    rule: ConvergenceRule,
    tol: float,
    max_iterations: int,
) -> ReplicatorResult:
    """Vectorised replicator dynamics on a CSR adjacency.

    Mirrors the python loop exactly — same convergence rules, same
    pruning threshold, same renormalisation guard — with the per-vertex
    work replaced by ``x ⊙ (Dx) / (x^T D x)`` array expressions.
    """
    import numpy as np

    from repro.graph.sparse import CSRAdjacency

    adj = CSRAdjacency.from_graph(graph)
    x = adj.embedding_vector({u: w for u, w in x0.items() if w > 0.0})
    if not (x > 0.0).any():
        raise ValueError("initial embedding has empty support")

    iterations = 0
    converged = False
    dx = adj.matvec(x)
    objective = float(x @ dx)
    while iterations < max_iterations:
        support = x > 0.0
        if objective <= 0.0:
            # f == 0: single vertex or edgeless support — the replicator
            # update is 0/0; the point is trivially a local KKT point.
            converged = True
            break
        numerators = dx[support]
        if rule == "gradient":
            if 2.0 * float(numerators.max() - numerators.min()) <= tol:
                converged = True
                break
        if (numerators < 0.0).any():
            raise ValueError(
                "replicator dynamics requires nonnegative weights; "
                "run it on GD+, not GD"
            )

        new_x = np.where(support, x * dx / objective, 0.0)
        new_x[new_x <= PRUNE_EPS] = 0.0
        if not (new_x > 0.0).any():
            # All mass decayed (possible only with zero gradients).
            converged = True
            break
        total = float(new_x.sum())
        if abs(total - 1.0) > 1e-15:
            new_x /= total

        dx = adj.matvec(new_x)
        new_objective = float(new_x @ dx)
        iterations += 1
        improvement = new_objective - objective
        x, objective = new_x, new_objective
        if rule == "objective" and improvement < tol:
            converged = True
            break

    return ReplicatorResult(
        x=adj.embedding_dict(x),
        objective=objective,
        iterations=iterations,
        converged=converged,
    )


def _objective(graph: Graph, x: Dict[Vertex, float]) -> float:
    total = 0.0
    for u, xu in x.items():
        for v, weight in graph.neighbors(u).items():
            xv = x.get(v)
            if xv is not None:
                total += xu * xv * weight
    return total
