"""The original SEA algorithm [Liu et al. 2013] and replicator dynamics.

This is the paper's baseline for DCSGA (run on ``GD+`` and followed by
the Refinement step); the package exists separately from
:mod:`repro.core` to keep the baseline's loose-convergence behaviour —
including its expansion errors — faithful to [18] rather than to the
paper's improved SEACD.
"""

from repro.affinity.dominant_sets import (
    DominantSet,
    cluster_assignment,
    dominant_set_clustering,
    extract_dominant_set,
)
from repro.affinity.replicator import (
    ConvergenceRule,
    ReplicatorResult,
    replicator_dynamics,
)
from repro.affinity.sea import SEAResult, SEAStats, sea, sea_refine_solver

__all__ = [
    "DominantSet",
    "extract_dominant_set",
    "dominant_set_clustering",
    "cluster_assignment",
    "ConvergenceRule",
    "ReplicatorResult",
    "replicator_dynamics",
    "SEAResult",
    "SEAStats",
    "sea",
    "sea_refine_solver",
]
