"""Dominant-set clustering (Pavan & Pelillo [21]).

The paper cites dominant sets as the classic application of maximising
``x^T A x`` over the simplex with replicator dynamics: each local maximum
is a *dominant set* — a cluster whose internal homogeneity exceeds its
external affinities.  Peeling dominant sets one at a time yields a
clustering; the module implements that loop on top of
:mod:`repro.affinity.replicator`, giving the library the [21] baseline in
full (it is also a second, historically-faithful route to multi-solution
mining next to :func:`repro.core.topk.top_k_dcsga`).

Only nonnegative affinity matrices are supported (a replicator-dynamics
requirement) — run on ``GD+`` for contrast inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.affinity.replicator import replicator_dynamics
from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class DominantSet:
    """One peeled cluster: its embedding, support and cohesiveness."""

    x: Dict[Vertex, float]
    support: Set[Vertex]
    cohesiveness: float  # f(x) at the local maximum


def extract_dominant_set(
    graph: Graph,
    seed_vertices: Optional[Set[Vertex]] = None,
    tol: float = 1e-9,
    max_iterations: int = 200_000,
) -> Optional[DominantSet]:
    """One dominant set of *graph* via replicator dynamics.

    Starts from the uniform embedding over *seed_vertices* (default: all
    non-isolated vertices) and iterates to a local maximum with the
    strict gradient condition.  Returns None when the graph has no edges
    among the seeds (no cluster to extract).
    """
    if seed_vertices is None:
        members = {
            u for u in graph.vertices() if graph.unweighted_degree(u) > 0
        }
    else:
        members = set(seed_vertices)
    if not members:
        return None
    x0 = {u: 1.0 / len(members) for u in members}
    result = replicator_dynamics(
        graph, x0, rule="gradient", tol=tol, max_iterations=max_iterations
    )
    if result.objective <= 0.0:
        return None
    support = {u for u, w in result.x.items() if w > 0.0}
    return DominantSet(
        x=dict(result.x),
        support=support,
        cohesiveness=result.objective,
    )


def dominant_set_clustering(
    graph: Graph,
    max_clusters: Optional[int] = None,
    min_cohesiveness: float = 0.0,
) -> List[DominantSet]:
    """Peel dominant sets until the graph (or the budget) is exhausted.

    The classic Pavan–Pelillo loop: extract a dominant set, remove its
    support, repeat.  Stops when no positive-cohesiveness cluster
    remains, when *max_clusters* is reached, or when cohesiveness falls
    to *min_cohesiveness*.
    """
    for _, _, weight in graph.edges():
        if weight < 0:
            raise ValueError(
                "dominant sets require nonnegative weights; run on GD+"
            )
    clusters: List[DominantSet] = []
    work = graph.copy()
    while max_clusters is None or len(clusters) < max_clusters:
        cluster = extract_dominant_set(work)
        if cluster is None or cluster.cohesiveness <= min_cohesiveness:
            break
        clusters.append(cluster)
        for vertex in cluster.support:
            work.remove_vertex(vertex)
    return clusters


def cluster_assignment(
    clusters: List[DominantSet],
) -> Dict[Vertex, int]:
    """Map each clustered vertex to its cluster index."""
    assignment: Dict[Vertex, int] = {}
    for index, cluster in enumerate(clusters):
        for vertex in cluster.support:
            assignment[vertex] = index
    return assignment
