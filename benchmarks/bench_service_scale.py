"""Multi-worker scale-out gates: throughput, identity, prepare-once.

Drives the same concurrent mixed workload — cache-busted solves, batch
submissions, live session event pushes — against two real server
subprocesses: ``repro serve --workers 1`` (the single-process baseline)
and ``repro serve --workers 4`` (the sharded cluster of
:mod:`repro.service.cluster`).  Clients are a thread pool, so the
measured quantity is *sustained concurrent throughput*, not serial
latency.

Gates:

* **scale-out** — with >= 4 real CPUs the 4-worker cluster must
  sustain >= 3x the single process's throughput (solver work is
  GIL-bound pure Python, so worker processes are the only way to use
  the cores); on smaller machines the floor derates — ratios on a
  shared core measure scheduling, not scaling — and p95 latency is
  reported either way;
* **byte-identity** — probe solve envelopes through the router equal
  the single process's for the same requests (the router relays owner
  responses verbatim; both servers run under ``PYTHONHASHSEED=0``);
* **prepare-once** — summed ``warm.cold_builds`` across the cluster's
  workers equals the number of distinct uploaded graphs: sharding plus
  shared-segment attach means no worker ever rebuilds a graph another
  worker prepared (cross-owner batch queries attach, counted in
  ``warm.shared_attaches``);
* **clean teardown** — after SIGTERM no ``rp<router-pid>_*`` segment
  survives in ``/dev/shm``.
"""

from __future__ import annotations

import glob
import json
import os
import random
import re
import signal
import subprocess
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from benchmarks._harness import emit
from repro.analysis.reporting import Table
from repro.graph.generators import random_signed_graph
from repro.graph.io import write_edge_list
from repro.service.cluster import _shard

N_GRAPHS = 6
N_WORKERS = 4
N_SOLVES = 24
N_BATCHES = 6
# One event push per session: pushes run concurrently from the client
# pool, and a session's event times must not run backwards.
N_SESSIONS = 8
N_EVENT_PUSHES = 8
CLIENT_THREADS = 8

_CPUS = os.cpu_count() or 1
#: honest floors: process scale-out needs real cores to show up
SPEEDUP_FLOOR = 3.0 if _CPUS >= 4 else (1.2 if _CPUS >= 2 else 0.1)


def _env():
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _graph_texts(tmp_path):
    """Deterministic (g1, g2) edge-list texts for N_GRAPHS uploads."""
    texts = []
    for index in range(N_GRAPHS):
        # Big enough that solver compute dominates per-request routing
        # overhead — the scale-out gate should measure the solvers.
        names = {i: f"v{i:03d}" for i in range(128)}
        g1 = (
            random_signed_graph(128, 0.10, seed=300 + index)
            .positive_part()
            .relabeled(names)
        )
        g2 = (
            random_signed_graph(128, 0.13, seed=400 + index)
            .positive_part()
            .relabeled(names)
        )
        for v in g1.vertices():
            g2.add_vertex(v)
        for v in g2.vertices():
            g1.add_vertex(v)
        p1 = tmp_path / f"scale{index}_g1.txt"
        p2 = tmp_path / f"scale{index}_g2.txt"
        write_edge_list(g1, p1)
        write_edge_list(g2, p2)
        texts.append(
            (
                p1.read_text(encoding="utf-8"),
                p2.read_text(encoding="utf-8"),
            )
        )
    return texts


def _post(base, path, payload, timeout=180):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(base, path, timeout=30):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.loads(response.read())


def _start_server(workers):
    """One ``repro serve`` subprocess; returns (proc, base_url)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--scale", "0.0",
            "--workers", str(workers),
            "--warm-capacity", "16",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", banner)
    assert match, f"no listening banner: {banner!r}"
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def _stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
        proc.kill()
        proc.wait(timeout=10)


def _upload_all(base, texts):
    for index, (g1_text, g2_text) in enumerate(texts):
        body = _post(
            base,
            "/v1/graphs",
            {"name": f"scale{index}", "g1": g1_text, "g2": g2_text},
        )
        assert len(body["fingerprint"]) == 64


def _mixed_workload():
    """The shuffled work list both servers serve — (kind, payload).

    Every solve and batch carries a unique ``tol_scale`` nudge so no
    request is a result-cache hit: the measurement is solver
    throughput, not cache lookups.  Batches deliberately mix graphs
    owned by different cluster workers, forcing the non-owner to serve
    via shared-memory attach.
    """
    work = []
    for i in range(N_SOLVES):
        work.append(
            (
                "solve",
                {
                    "graph": f"scale{i % N_GRAPHS}",
                    "kind": "dcsad" if i % 2 else "dcsga",
                    "backend": "python",
                    "tol_scale": 1e-2 * (1.0 + 1e-6 * (i + 1)),
                },
            )
        )
    # Pair graph j with j+1 in each batch so most batches straddle
    # shard owners (asserted before the run).
    for i in range(N_BATCHES):
        a, b = i % N_GRAPHS, (i + 1) % N_GRAPHS
        work.append(
            (
                "batch",
                {
                    "queries": [
                        {
                            "kind": "dcsga",
                            "graph": f"scale{a}",
                            "tol_scale": 1e-2 * (1.0 + 1e-6 * (100 + i)),
                        },
                        {
                            "kind": "dcsad",
                            "graph": f"scale{b}",
                            "tol_scale": 1e-2 * (1.0 + 1e-6 * (200 + i)),
                        },
                        {
                            "kind": "dcsga",
                            "graph": f"scale{b}",
                            "k": 2,
                            "tol_scale": 1e-2 * (1.0 + 1e-6 * (300 + i)),
                        },
                    ]
                },
            )
        )
    for i in range(N_EVENT_PUSHES):
        events = [
            {"t": i * 4 + j, "u": f"v{j:02d}", "v": f"v{j + 1:02d}",
             "w": 1.0 + (i + j) % 3}
            for j in range(4)
        ]
        work.append(("events", {"session_index": i, "events": events}))
    random.Random(0).shuffle(work)
    return work


def _run_load(base, work, sessions):
    """Serve *work* from CLIENT_THREADS concurrent clients.

    Returns ``(wall_seconds, latencies, bodies)``; raises on any
    non-ok outcome so a silently failing server cannot "win" the
    throughput comparison.
    """

    def one(item):
        kind, payload = item
        start = time.perf_counter()
        if kind == "solve":
            body = _post(base, "/v1/solve", payload)
            assert body["status"] == "ok", body
        elif kind == "batch":
            body = _post(base, "/v1/batch", payload)
            assert body["status"] == "ok", body
        else:
            sid = sessions[payload["session_index"]]
            body = _post(
                base,
                f"/v1/stream/sessions/{sid}/events",
                {"events": payload["events"]},
            )
            assert body["status"] == "ok", body
        return time.perf_counter() - start, (kind, body)

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        outcomes = list(pool.map(one, work))
    wall = time.perf_counter() - wall_start
    latencies = sorted(seconds for seconds, _ in outcomes)
    return wall, latencies, [body for _, body in outcomes]


def _create_sessions(base):
    sids = []
    for _ in range(N_SESSIONS):
        body = _post(
            base,
            "/v1/stream/sessions",
            {
                "universe": [f"v{i:02d}" for i in range(8)],
                "window": 4,
                "threshold": 1e9,  # alerts are not the point here
            },
        )
        sids.append(body["session"])
    return sids


def _probe_solves(base):
    """Fixed-parameter solves for the byte-identity comparison."""
    bodies = []
    for index in range(N_GRAPHS):
        for kind in ("dcsad", "dcsga"):
            bodies.append(
                _post(
                    base,
                    "/v1/solve",
                    {
                        "graph": f"scale{index}",
                        "kind": kind,
                        "backend": "python",
                    },
                )
            )
    return bodies


def _strip(record):
    return json.dumps(
        {k: v for k, v in record.items() if k != "timings"},
        sort_keys=True,
    )


def _p95(latencies):
    return latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]


def test_service_scale_out(benchmark, tmp_path):
    texts = _graph_texts(tmp_path)
    work = _mixed_workload()

    # The batches must actually straddle shard owners for the
    # shared-attach assertion to mean anything.
    owners = {f"scale{i}": _shard(f"scale{i}", N_WORKERS)
              for i in range(N_GRAPHS)}
    assert len(set(owners.values())) > 1, owners

    # ---- single process baseline ------------------------------------
    proc, base = _start_server(1)
    try:
        _upload_all(base, texts)
        single_probe = _probe_solves(base)
        sessions = _create_sessions(base)
        single_wall, single_lat, _ = _run_load(base, work, sessions)
        single_metrics = _get(base, "/metrics")
    finally:
        _stop_server(proc)

    # ---- 4-worker cluster -------------------------------------------
    proc, base = _start_server(N_WORKERS)
    router_pid = proc.pid
    try:
        _upload_all(base, texts)
        # Let every export announcement land before mixed traffic.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            health = _get(base, "/healthz")
            if health["cluster"]["segments_announced"] >= N_GRAPHS:
                break
            time.sleep(0.1)
        cluster_probe = _probe_solves(base)
        sessions = _create_sessions(base)

        def cluster_pass():
            return _run_load(base, work, sessions)

        cluster_wall, cluster_lat, _ = benchmark.pedantic(
            cluster_pass, rounds=1, iterations=1
        )
        cluster_metrics = _get(base, "/metrics")
        health = _get(base, "/healthz")
    finally:
        _stop_server(proc)

    total = len(work)
    single_rps = total / single_wall
    cluster_rps = total / cluster_wall
    speedup = cluster_rps / single_rps
    workers = cluster_metrics["workers"]
    cold_builds = sum(w["warm"]["cold_builds"] for w in workers)
    shared_attaches = sum(w["warm"]["shared_attaches"] for w in workers)
    leftovers = glob.glob(f"/dev/shm/rp{router_pid}_*")

    table = Table(
        title=(
            f"Concurrent mixed traffic ({total} requests, "
            f"{CLIENT_THREADS} client threads, {_CPUS} CPUs)"
        ),
        columns=[
            "topology", "wall (s)", "req/s", "p50 (ms)", "p95 (ms)",
        ],
    )
    table.add_row(
        [
            "1 process",
            f"{single_wall:.2f}",
            f"{single_rps:.1f}",
            f"{1000 * single_lat[len(single_lat) // 2]:.0f}",
            f"{1000 * _p95(single_lat):.0f}",
        ]
    )
    table.add_row(
        [
            f"{N_WORKERS} workers",
            f"{cluster_wall:.2f}",
            f"{cluster_rps:.1f}",
            f"{1000 * cluster_lat[len(cluster_lat) // 2]:.0f}",
            f"{1000 * _p95(cluster_lat):.0f}",
        ]
    )
    gates = {
        "all_answered": True,  # _run_load asserted each body
        "byte_identical_probes": [
            _strip(b["result"]) for b in cluster_probe
        ] == [_strip(b["result"]) for b in single_probe],
        "prepare_once": cold_builds == N_GRAPHS,
        "shared_attach_used": shared_attaches >= 1,
        "no_leaked_segments": leftovers == [],
        "speedup_floor": speedup >= SPEEDUP_FLOOR,
    }
    emit(
        "service_scale",
        table.render()
        + f"\nscale-out speedup: {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x at {_CPUS} CPUs)"
        + f"\ncold builds across workers: {cold_builds} "
        f"(graphs uploaded: {N_GRAPHS}), "
        f"shared-memory attaches: {shared_attaches}"
        + f"\nworker restarts: {health['cluster']['restarts']}, "
        f"segments announced: {health['cluster']['segments_announced']}",
        data={
            "cpus": _CPUS,
            "requests": total,
            "client_threads": CLIENT_THREADS,
            "single_wall_seconds": single_wall,
            "cluster_wall_seconds": cluster_wall,
            "single_rps": single_rps,
            "cluster_rps": cluster_rps,
            "single_p95_seconds": _p95(single_lat),
            "cluster_p95_seconds": _p95(cluster_lat),
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "cold_builds": cold_builds,
            "shared_attaches": shared_attaches,
            "single_cold_builds": single_metrics["warm"]["cold_builds"],
            "gates": gates,
        },
    )

    # Gate: envelopes through the router are the single process's bytes.
    assert gates["byte_identical_probes"]

    # Gate: each uploaded graph was fully prepared exactly once across
    # the whole cluster — the owner built it, everyone else attached.
    assert gates["prepare_once"], (
        f"expected {N_GRAPHS} cold builds across the cluster, "
        f"got {cold_builds} "
        f"(per worker: {[w['warm']['cold_builds'] for w in workers]})"
    )
    assert gates["shared_attach_used"], (
        "cross-owner batch queries never attached a shared segment"
    )

    # Gate: no /dev/shm segment survived the router's SIGTERM sweep.
    assert gates["no_leaked_segments"], leftovers

    # Gate: sustained throughput scale-out (derated below 4 CPUs).
    assert gates["speedup_floor"], (
        f"{N_WORKERS}-worker cluster sustained {speedup:.2f}x the "
        f"single process on concurrent mixed traffic — below the "
        f"{SPEEDUP_FLOOR}x floor for {_CPUS} CPUs "
        f"(single {single_rps:.1f} req/s, cluster {cluster_rps:.1f} "
        f"req/s, cluster p95 {1000 * _p95(cluster_lat):.0f} ms)"
    )
