"""Batch service gates: speedup, byte-identical parity, cache hits.

The workload is a 16-query mixed DCSAD/DCSGA sweep over four Table II
registry rows (the Douban Movie/Book contrast graphs) — the shape of
the paper's multi-dataset studies, issued the way a query service
receives them: every query names its dataset and parameters
independently.

Three gates:

* **>= 2x wall-clock speedup** of ``BatchExecutor(workers=4)`` over the
  serial loop that resolves and solves each query end-to-end — the win
  comes from the plan's shared-prep dedup (each difference graph built
  once instead of four times) plus, where more than one CPU exists, the
  worker fan-out.
* **Byte-identical per-query results**: the batch payloads must equal
  the serial loop's payloads as canonical JSON, byte for byte.
* **A demonstrated cache hit on resubmission**: resubmitting the same
  16 queries answers every one from the content-addressed cache,
  byte-identical again and with zero solves.

The per-query records are written to ``benchmarks/output/
batch_results.jsonl`` — the artefact CI uploads.
"""

from __future__ import annotations

import json
import time

from benchmarks._harness import OUTPUT_DIR, SCALE, emit
from repro.analysis.reporting import Table
from repro.batch import BatchExecutor, BatchQuery, GraphSource
from repro.batch.executor import execute_payload
from repro.datasets.registry import build_named

#: The four shared difference graphs of the sweep.
DATASETS = (
    "Book/-/Interest-Social",
    "Book/-/Social-Interest",
    "Movie/-/Interest-Social",
    "Movie/-/Social-Interest",
)

#: Per-dataset query mix: both measures, both backends.
MIX = (
    ("ad-py", "dcsad", "python"),
    ("ad-sp", "dcsad", "sparse"),
    ("ga-sp", "dcsga", "sparse"),
    ("ga-py", "dcsga", "python"),
)


def _queries():
    queries = []
    for dataset in DATASETS:
        source = GraphSource.from_registry(dataset, SCALE)
        for tag, kind, backend in MIX:
            queries.append(
                BatchQuery(
                    kind=kind,
                    source=source,
                    backend=backend,
                    qid=f"{dataset}|{tag}",
                )
            )
    return queries


def _serial_loop(queries):
    """The pre-batch-layer baseline: every query end-to-end on its own.

    Exactly what a caller scripting the library (or invoking the CLI
    per query) pays: resolve the dataset reference, assemble the
    difference graph, solve — with nothing shared between queries.
    Payloads come from the same :func:`execute_payload` the executor
    uses, so parity can be asserted byte-for-byte.
    """
    payloads = []
    for query in queries:
        gd = build_named(query.source.dataset, scale=query.source.scale).graph
        payloads.append(execute_payload(query.kind, query.solve_params(), gd))
    return payloads


def _canonical(payloads):
    return [json.dumps(payload, sort_keys=True) for payload in payloads]


def _run_comparison():
    queries = _queries()
    assert len(queries) == 16

    start = time.perf_counter()
    serial_payloads = _serial_loop(queries)
    serial_seconds = time.perf_counter() - start

    executor = BatchExecutor(workers=4)
    start = time.perf_counter()
    results = executor.run(queries)
    batch_seconds = time.perf_counter() - start
    first_stats = executor.stats

    start = time.perf_counter()
    resubmitted = executor.run(queries)
    resubmit_seconds = time.perf_counter() - start

    return {
        "queries": queries,
        "serial_seconds": serial_seconds,
        "batch_seconds": batch_seconds,
        "resubmit_seconds": resubmit_seconds,
        "serial_payloads": serial_payloads,
        "results": results,
        "resubmitted": resubmitted,
        "first_stats": first_stats,
        "resubmit_stats": executor.stats,
    }


def test_batch_speedup_parity_and_cache(benchmark):
    data = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    results = data["results"]
    speedup = data["serial_seconds"] / data["batch_seconds"]

    OUTPUT_DIR.mkdir(exist_ok=True)
    artefact = OUTPUT_DIR / "batch_results.jsonl"
    artefact.write_text(
        "\n".join(result.to_json() for result in results) + "\n",
        encoding="utf-8",
    )

    table = Table(
        title=(
            "Batch service: 16-query mixed DCSAD/DCSGA sweep "
            f"(4 datasets x 4 queries, scale {SCALE})"
        ),
        columns=["Path", "Wall (s)", "Preps", "Solves", "Cache hits"],
    )
    first = data["first_stats"]
    second = data["resubmit_stats"]
    table.add_row(
        ["serial loop", f"{data['serial_seconds']:.3f}", "16", "16", "0"]
    )
    table.add_row(
        [
            f"batch workers=4 ({first.mode})",
            f"{data['batch_seconds']:.3f}",
            str(first.preps_built),
            str(first.solved),
            str(first.cache_hits),
        ]
    )
    table.add_row(
        [
            "resubmission",
            f"{data['resubmit_seconds']:.3f}",
            str(second.preps_built),
            str(second.solved),
            str(second.cache_hits),
        ]
    )
    emit(
        "batch_speedup",
        table.render()
        + f"\nspeedup over serial loop: {speedup:.2f}x"
        + f"\n[per-query records in benchmarks/output/{artefact.name}]",
        data={
            "serial_seconds": data["serial_seconds"],
            "batch_seconds": data["batch_seconds"],
            "resubmit_seconds": data["resubmit_seconds"],
            "speedup": speedup,
            "mode": first.mode,
            "gates": {
                "all_ok": all(r.status == "ok" for r in results),
                "byte_identical": _canonical(
                    [r.payload for r in results]
                ) == _canonical(data["serial_payloads"]),
                "speedup_floor_2x": speedup >= 2.0,
                "resubmit_all_cached": all(
                    r.cached for r in data["resubmitted"]
                ),
            },
        },
    )

    # Gate 1: every query answered, in input order.
    assert [r.qid for r in results] == [q.qid for q in data["queries"]]
    assert all(r.status == "ok" for r in results)

    # Gate 2: byte-identical per-query results vs the serial loop.
    assert _canonical([r.payload for r in results]) == _canonical(
        data["serial_payloads"]
    )

    # Gate 3: >= 2x wall-clock over the serial loop (shared-prep dedup
    # alone achieves this on one CPU; worker fan-out adds on top).
    assert speedup >= 2.0, (
        f"batch path must be >= 2x over the serial loop, got {speedup:.2f}x "
        f"(serial {data['serial_seconds']:.3f}s, "
        f"batch {data['batch_seconds']:.3f}s)"
    )

    # Gate 4: resubmission is served from the cache — all 16 hits, zero
    # solves, byte-identical payloads, and measurably cheaper than the
    # first batch run (only the prep/fingerprint pass remains).
    resubmitted = data["resubmitted"]
    assert all(r.cached for r in resubmitted)
    assert second.cache_hits == 16 and second.solved == 0
    assert _canonical([r.payload for r in resubmitted]) == _canonical(
        data["serial_payloads"]
    )
    assert data["resubmit_seconds"] < data["batch_seconds"]
