"""Fig. 2 — SEACD+Refine speed-up over SEA+Refine and SEA error rate.

The paper plots, per dataset, (a) the speed-up of SEACD+Refine over
SEA+Refine and (b) the SEA expansion-error rate (#errors / n), both
against the positive-edge density ``m+/n`` of the difference graph.
This bench regenerates both series over the full dataset collection plus
a controlled density sweep of synthetic difference graphs.
"""

from __future__ import annotations

from benchmarks._harness import all_named_difference_graphs, emit, timed
from repro.affinity.sea import sea_refine_solver
from repro.analysis.reporting import Series
from repro.core.newsea import solve_all_initializations
from repro.graph.generators import random_signed_graph


def _measure(gd_plus):
    cd, t_cd = timed(solve_all_initializations, gd_plus)
    sea, t_sea = timed(
        solve_all_initializations,
        gd_plus,
        solver=sea_refine_solver(shrink_tol=1e-6),
    )
    n = gd_plus.num_vertices
    return {
        "density": gd_plus.num_edges / n,
        "speedup": t_sea / t_cd if t_cd > 0 else float("inf"),
        "error_rate": sea.expansion_errors / n,
        "cd_errors": cd.expansion_errors,
    }


def _sweep():
    points = []
    # All the paper datasets...
    for (data, setting, gd_type), gd in all_named_difference_graphs().items():
        record = _measure(gd.positive_part())
        record["label"] = f"{data}/{setting}/{gd_type}"
        points.append(record)
    # ...plus a controlled synthetic density sweep.
    for p in (0.01, 0.03, 0.06, 0.12):
        gd = random_signed_graph(
            220, p, positive_fraction=0.7, seed=int(p * 1000)
        )
        record = _measure(gd.positive_part())
        record["label"] = f"sweep/p={p}"
        points.append(record)
    return points


def test_fig02_speedup_and_errors(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    speedup = Series(
        title="Fig. 2a layout: speed-up of SEACD+Refine over SEA+Refine",
        x_label="m+/n",
        y_label="SpeedUp",
    )
    errors = Series(
        title="Fig. 2b layout: SEA expansion error rate (#errors / n)",
        x_label="m+/n",
        y_label="ErrorRate",
    )
    for record in points:
        speedup.add(record["density"], record["speedup"])
        errors.add(record["density"], record["error_rate"])
    emit(
        "fig02_speedup_errors",
        speedup.render() + "\n\n" + errors.render(),
    )

    # Shape assertions:
    # SEACD never errs; SEA errs somewhere across the collection.
    assert all(r["cd_errors"] == 0 for r in points)
    assert any(r["error_rate"] > 0 for r in points)
    # SEACD+Refine is faster than SEA+Refine essentially everywhere.
    faster = sum(1 for r in points if r["speedup"] > 1.0)
    assert faster >= len(points) - 2
    # Speed-up grows with density: the mean speed-up of the densest
    # third beats the sparsest third (the paper's Fig. 2a trend).
    ranked = sorted(points, key=lambda r: r["density"])
    third = len(ranked) // 3
    sparse_mean = sum(r["speedup"] for r in ranked[:third]) / third
    dense_mean = sum(r["speedup"] for r in ranked[-third:]) / third
    assert dense_mean > sparse_mean
