"""Table XIV — DCSGA on the large DBLP-C and Actor datasets.

The paper's shape: under the Weighted setting a tiny extreme group wins
(2 authors on DBLP-C, 3 actors with affinity ~108); the Discrete setting
(quantisation / weight capping) surfaces a much larger group instead
(26 authors / 21 actors).
"""

from __future__ import annotations

from benchmarks._harness import (
    actor_difference_graphs,
    dblp_c_difference_graphs,
    emit,
)
from repro.analysis.metrics import affinity, edge_density
from repro.analysis.reporting import Table
from repro.core.newsea import new_sea


def _run_all():
    out = {}
    for setting, gd in dblp_c_difference_graphs().items():
        out[("DBLP-C", setting)] = (gd, new_sea(gd.positive_part()))
    for setting, gd in actor_difference_graphs().items():
        out[("Actor", setting)] = (gd, new_sea(gd.positive_part()))
    return out


def test_table14_dblpc_actor(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = Table(
        title="Table XIV layout: DCSGA on DBLP-C and Actor data",
        columns=[
            "Data",
            "Setting",
            "#Users",
            "Graph Affinity Diff",
            "Edge Density Diff",
        ],
    )
    for (data, setting), (gd, result) in results.items():
        table.add_row(
            [
                data,
                setting,
                len(result.support),
                f"{affinity(gd, result.x):.3f}",
                f"{edge_density(gd, result.support):.3f}",
            ]
        )
    emit("table14_dblpc_actor", table.render())

    # Shape assertions mirroring Table XIV:
    dblp_weighted = results[("DBLP-C", "Weighted")][1]
    dblp_discrete = results[("DBLP-C", "Discrete")][1]
    actor_weighted = results[("Actor", "Weighted")][1]
    actor_discrete = results[("Actor", "Discrete")][1]
    # Weighted settings: tiny extreme groups (paper: 2 and 3 users).
    assert len(dblp_weighted.support) <= 4
    assert len(actor_weighted.support) <= 4
    # Discrete settings: much larger groups (paper: 26 and 21 users).
    assert len(dblp_discrete.support) >= 3 * len(dblp_weighted.support)
    assert len(actor_discrete.support) >= 3 * len(actor_weighted.support)
    # Weighted affinities dwarf the discrete ones (paper: 200 vs 1.9,
    # 108 vs 6.5).
    assert dblp_weighted.objective > 10 * dblp_discrete.objective
    assert actor_weighted.objective > 5 * actor_discrete.objective
    # All are positive cliques.
    for _, result in results.values():
        assert result.is_positive_clique
