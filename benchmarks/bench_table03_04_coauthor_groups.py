"""Tables III & IV — emerging/disappearing co-author groups.

For the four DBLP difference-graph configurations, run DCSGreedy
(average degree) and NewSEA (graph affinity), list the found groups with
their embeddings (Table III) and their statistics (Table IV): size,
positive-clique flag, average-degree difference, approximation ratio,
affinity difference and edge-density difference.
"""

from __future__ import annotations

from benchmarks._harness import dblp_dataset, dblp_difference_graphs, emit
from repro.analysis.metrics import affinity, average_degree, edge_density
from repro.analysis.reporting import (
    Table,
    format_embedding,
    format_ratio,
    yes_no,
)
from repro.core.dcsad import dcs_greedy
from repro.core.newsea import new_sea
from repro.graph.cliques import is_positive_clique


def _solve_all():
    results = {}
    for key, gd in dblp_difference_graphs().items():
        results[key] = {
            "ad": dcs_greedy(gd),
            "ga": new_sea(gd.positive_part()),
        }
    return results


def test_table03_04_coauthor_groups(benchmark):
    results = benchmark.pedantic(_solve_all, rounds=1, iterations=1)
    dataset = dblp_dataset()
    graphs = dblp_difference_graphs()

    groups = Table(
        title="Table III layout: co-author groups found",
        columns=["Setting", "GD Type", "Measure", "Group (embedding)"],
    )
    stats = Table(
        title=(
            "Table IV layout: per-group statistics "
            "(density measures on the difference graph)"
        ),
        columns=[
            "Setting",
            "GD Type",
            "Density",
            "#Authors",
            "Positive Clique?",
            "Ave. Degree Diff",
            "Approx. Ratio",
            "Graph Affinity Diff",
            "Edge Density Diff",
        ],
    )

    planted = [
        frozenset(g)
        for g in dataset.emerging_groups + dataset.disappearing_groups
    ]
    recovered_planted = 0
    for (setting, gd_type), result in results.items():
        gd = graphs[(setting, gd_type)]
        ad, ga = result["ad"], result["ga"]
        groups.add_row(
            [setting, gd_type, "Average Degree", sorted(ad.subset)]
        )
        groups.add_row(
            [
                setting,
                gd_type,
                "Graph Affinity",
                format_embedding(ga.x.items(), max_entries=8),
            ]
        )
        stats.add_row(
            [
                setting,
                gd_type,
                "Average Degree",
                len(ad.subset),
                yes_no(is_positive_clique(gd, ad.subset)),
                f"{ad.density:.2f}",
                format_ratio(ad.ratio_bound),
                "-",
                f"{edge_density(gd, ad.subset):.3f}",
            ]
        )
        stats.add_row(
            [
                setting,
                gd_type,
                "Graph Affinity",
                len(ga.support),
                yes_no(ga.is_positive_clique),
                f"{average_degree(gd, ga.support):.2f}",
                "-",
                f"{affinity(gd, ga.x):.3f}",
                f"{edge_density(gd, ga.support):.3f}",
            ]
        )
        if any(ga.support <= p or p <= ga.support for p in planted):
            recovered_planted += 1

    emit(
        "table03_04_coauthor_groups",
        groups.render() + "\n\n" + stats.render(),
    )

    # Shape assertions mirroring Table IV:
    for (setting, gd_type), result in results.items():
        gd = graphs[(setting, gd_type)]
        # NewSEA answers are always positive cliques.
        assert result["ga"].is_positive_clique
        # The data-dependent ratio is reported and sane.
        assert result["ad"].ratio_bound is None or result["ad"].ratio_bound >= 1.0
    # Affinity answers recover planted groups in most configurations.
    assert recovered_planted >= 3
