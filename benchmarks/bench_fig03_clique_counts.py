"""Fig. 3 — clique counts of the Douban data.

SEACD+Refinement with all-vertex initialisation returns many positive
cliques; the paper plots, for each Douban difference graph, the number
of k-cliques found (after deduplication and sub-clique removal) per
size k.  The headline observation: for movies the Interest-Social graph
carries the larger cliques, for books the Social-Interest one — matching
the density asymmetry of Table XIII.
"""

from __future__ import annotations

from benchmarks._harness import douban_difference_graphs, emit
from repro.analysis.clique_census import census_from_all_inits, census_series
from repro.core.newsea import solve_all_initializations


def _census_all():
    out = {}
    for key, gd in douban_difference_graphs().items():
        gd_plus = gd.positive_part()
        result = solve_all_initializations(gd_plus)
        out[key] = census_from_all_inits(result)
    return out


def test_fig03_clique_counts(benchmark):
    censuses = benchmark.pedantic(_census_all, rounds=1, iterations=1)

    parts = []
    for interest in ("Movie", "Book"):
        for gd_type in ("Interest-Social", "Social-Interest"):
            census = censuses[(interest, gd_type)]
            series = census_series(
                census, f"Fig. 3 ({interest}): {gd_type}", min_size=2
            )
            parts.append(series.render())
    emit("fig03_clique_counts", "\n\n".join(parts))

    # Shape assertions: the *largest found clique* follows the paper's
    # asymmetry — movie cliques peak in Interest-Social, book cliques in
    # Social-Interest.
    movie_inter = censuses[("Movie", "Interest-Social")].max_size()
    movie_social = censuses[("Movie", "Social-Interest")].max_size()
    book_inter = censuses[("Book", "Interest-Social")].max_size()
    book_social = censuses[("Book", "Social-Interest")].max_size()
    assert movie_inter > movie_social
    assert book_inter < book_social
    # Every census counted at least one clique.
    for census in censuses.values():
        assert census.total >= 1
