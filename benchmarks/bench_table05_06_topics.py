"""Tables V & VI — emerging/disappearing data-mining topics.

Table V: top-5 emerging and disappearing topics w.r.t. graph affinity,
mined from the keyword difference graphs by SEACD+Refinement with
all-vertex initialisation (the paper's multi-solution configuration).

Table VI: top-5 topics in G1 and G2 *separately* — demonstrating the
"time series trap" the introduction motivates DCS with.
"""

from __future__ import annotations

from benchmarks._harness import dm_corpus, dm_difference_graphs, emit
from repro.analysis.reporting import Table, format_embedding
from repro.core.newsea import solve_all_initializations


def _mine_topics():
    graphs = dm_difference_graphs()
    corpus = dm_corpus()
    out = {}
    for gd_type, gd in graphs.items():
        out[gd_type] = solve_all_initializations(gd.positive_part()).solutions[:5]
    for era, graph in (("G1", corpus.g1), ("G2", corpus.g2)):
        out[era] = solve_all_initializations(graph).solutions[:5]
    return out


def test_table05_06_topics(benchmark):
    mined = benchmark.pedantic(_mine_topics, rounds=1, iterations=1)
    corpus = dm_corpus()

    table5 = Table(
        title="Table V layout: top-5 emerging/disappearing topics (affinity)",
        columns=["Rank", "Emerging", "Disappearing"],
    )
    for rank in range(5):
        cells = [str(rank + 1)]
        for gd_type in ("Emerging", "Disappearing"):
            solutions = mined[gd_type]
            if rank < len(solutions):
                _, x, _ = solutions[rank]
                cells.append(format_embedding(x.items(), max_entries=4))
            else:
                cells.append("-")
        table5.add_row(cells)

    table6 = Table(
        title="Table VI layout: top-5 topics in each era's own graph",
        columns=["Rank", "G1 (early era)", "G2 (recent era)"],
    )
    for rank in range(5):
        cells = [str(rank + 1)]
        for era in ("G1", "G2"):
            solutions = mined[era]
            if rank < len(solutions):
                _, x, _ = solutions[rank]
                cells.append(format_embedding(x.items(), max_entries=4))
            else:
                cells.append("-")
        table6.add_row(cells)

    emit("table05_06_topics", table5.render() + "\n\n" + table6.render())

    # Shape assertions:
    top_emerging = {
        frozenset(support) for support, _, _ in mined["Emerging"]
    }
    assert any(
        frozenset(t) in top_emerging for t in corpus.emerging_topics
    ), "a planted emerging topic must appear in the top-5"
    top_disappearing = {
        frozenset(support) for support, _, _ in mined["Disappearing"]
    }
    assert any(
        frozenset(t) in top_disappearing for t in corpus.disappearing_topics
    )
    # The trap: a stable topic ranks in the single-graph top-5 of both
    # eras but in neither contrast top-5.
    stable = [frozenset(t) for t in corpus.stable_topics]
    g1_top = {frozenset(s) for s, _, _ in mined["G1"]}
    g2_top = {frozenset(s) for s, _, _ in mined["G2"]}
    trapped = [t for t in stable if t in g1_top and t in g2_top]
    assert trapped, "some evergreen topic should top both single-graph lists"
    for topic in trapped:
        assert topic not in top_emerging
        assert topic not in top_disappearing
