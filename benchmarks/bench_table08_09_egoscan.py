"""Tables VIII & IX — comparison with EgoScan [Cadena et al. 2016].

Table VIII: statistics of the co-author groups EgoScan finds on the four
DBLP difference graphs — much larger, non-clique subgraphs with far
lower density difference than the DCS answers (compare Table IV).

Table IX: total-edge-weight difference ``W_D(S)`` of the groups found by
DCSGreedy, NewSEA and EgoScan — the one metric where EgoScan (whose
objective *is* total weight) wins.
"""

from __future__ import annotations

from benchmarks._harness import dblp_difference_graphs, emit
from repro.analysis.metrics import average_degree, edge_density, total_degree
from repro.analysis.reporting import Table, yes_no
from repro.baselines.egoscan import ego_scan
from repro.core.dcsad import dcs_greedy
from repro.core.newsea import new_sea
from repro.graph.cliques import is_positive_clique


def _run_all():
    out = {}
    for key, gd in dblp_difference_graphs().items():
        out[key] = {
            "ego": ego_scan(gd),
            "ad": dcs_greedy(gd),
            "ga": new_sea(gd.positive_part()),
            "gd": gd,
        }
    return out


def test_table08_09_egoscan(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table8 = Table(
        title="Table VIII layout: statistics of subgraphs found by EgoScan",
        columns=[
            "Setting",
            "GD Type",
            "#Authors",
            "#Edges",
            "Positive Clique?",
            "Ave. Degree Diff",
            "Edge Density Diff",
        ],
    )
    table9 = Table(
        title=(
            "Table IX layout: total edge weight difference W_D(S) "
            "of DCS algorithms vs EgoScan"
        ),
        columns=["Setting", "GD Type", "DCSGreedy", "NewSEA", "EgoScan"],
    )

    for (setting, gd_type), result in results.items():
        gd = result["gd"]
        ego_set = result["ego"].subset
        edges = gd.subgraph(ego_set).num_edges
        table8.add_row(
            [
                setting,
                gd_type,
                len(ego_set),
                edges,
                yes_no(is_positive_clique(gd, ego_set)),
                f"{average_degree(gd, ego_set):.2f}",
                f"{edge_density(gd, ego_set):.4f}",
            ]
        )
        table9.add_row(
            [
                setting,
                gd_type,
                f"{total_degree(gd, result['ad'].subset):.0f}",
                f"{total_degree(gd, result['ga'].support):.0f}",
                f"{result['ego'].total_weight:.0f}",
            ]
        )

    emit("table08_09_egoscan", table8.render() + "\n\n" + table9.render())

    # Shape assertions (paper Section VI-E).  On very sparse quantised
    # graphs EgoScan's optimum can coincide with the planted clique, so
    # the "bigger and sloppier" claims are asserted in aggregate rather
    # than per configuration.
    non_clique = 0
    strictly_bigger = 0
    for (setting, gd_type), result in results.items():
        gd = result["gd"]
        ego_set = result["ego"].subset
        assert len(ego_set) >= len(result["ad"].subset)
        assert len(ego_set) >= len(result["ga"].support)
        if len(ego_set) > len(result["ga"].support):
            strictly_bigger += 1
        if not is_positive_clique(gd, ego_set):
            non_clique += 1
        # Never denser than DCSGreedy, always at least as heavy.
        assert average_degree(gd, ego_set) <= result["ad"].density + 1e-9
        assert result["ego"].total_weight >= total_degree(
            gd, result["ad"].subset
        ) - 1e-9
        assert result["ego"].total_weight >= total_degree(
            gd, result["ga"].support
        ) - 1e-9
    assert non_clique >= 3
    assert strictly_bigger >= 3
