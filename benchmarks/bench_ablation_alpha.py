"""Ablation — the alpha-generalised difference graph (Section III-D).

``D = A2 - alpha * A1`` mines subgraphs with ``rho2(S) >= alpha rho1(S)``
maximising ``rho2 - alpha rho1``, analogous to optimal alpha-quasi-clique
mining.  Sweeping alpha on the DBLP pair shows the expected monotone
behaviour: larger alpha penalises any historical collaboration harder, so
answers shrink toward the purest newly-formed groups and the contrast
value decreases.
"""

from __future__ import annotations

from benchmarks._harness import dblp_dataset, emit
from repro.analysis.reporting import Table
from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph
from repro.core.newsea import new_sea

ALPHAS = (0.0, 0.5, 1.0, 2.0, 4.0)


def _sweep():
    dataset = dblp_dataset()
    rows = []
    for alpha in ALPHAS:
        gd = difference_graph(dataset.g1, dataset.g2, alpha=alpha)
        ad = dcs_greedy(gd)
        ga = new_sea(gd.positive_part())
        rows.append(
            {
                "alpha": alpha,
                "ad_size": len(ad.subset),
                "ad_value": ad.density,
                "ga_size": len(ga.support),
                "ga_value": ga.objective,
                "positive_edges": sum(1 for _, _, w in gd.edges() if w > 0),
            }
        )
    return rows


def test_ablation_alpha_generalisation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = Table(
        title="alpha-generalisation sweep on the DBLP pair (D = A2 - alpha*A1)",
        columns=[
            "alpha",
            "m+ of GD",
            "DCSAD |S|",
            "DCSAD value",
            "DCSGA |S|",
            "DCSGA value",
        ],
    )
    for row in rows:
        table.add_row(
            [
                f"{row['alpha']:.1f}",
                row["positive_edges"],
                row["ad_size"],
                f"{row['ad_value']:.2f}",
                row["ga_size"],
                f"{row['ga_value']:.3f}",
            ]
        )
    emit("ablation_alpha", table.render())

    # Larger alpha -> fewer positive difference edges and weaker optima.
    positives = [row["positive_edges"] for row in rows]
    assert positives == sorted(positives, reverse=True)
    ga_values = [row["ga_value"] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(ga_values, ga_values[1:]))
    ad_values = [row["ad_value"] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(ad_values, ad_values[1:]))
    # alpha = 0 is plain densest subgraph of G2 — the largest values.
    assert rows[0]["ad_value"] == max(ad_values)
