"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper.  The rendered
artefact is printed to stdout *and* written to ``benchmarks/output/`` so
the reproduction record survives pytest's output capturing; pytest-
benchmark's own table covers the timing columns.

Dataset construction is cached per session: several tables reuse the
same synthetic dataset, and regeneration is deterministic anyway.

Scale: ``REPRO_BENCH_SCALE`` (default 0.35) scales every synthetic
dataset.  The paper's datasets are orders of magnitude larger; see
DESIGN.md section 3 for why ratios/orderings — not absolute seconds —
are the comparison target.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import time
from typing import Any, Callable, Dict, Optional, Tuple

#: Scale factor applied to every dataset builder.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def emit(
    name: str, text: str, data: Optional[Dict[str, Any]] = None
) -> None:
    """Print an artefact and persist it under benchmarks/output/.

    *data* additionally writes a machine-readable
    ``BENCH_<name>.json`` next to the text artefact — timings,
    speedups and gate verdicts that CI uploads and trend tooling can
    consume without parsing the rendered table.  Non-JSON values are
    stringified rather than refused: the record is a telemetry
    artefact, never an input.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    if data is not None:
        json_path = OUTPUT_DIR / f"BENCH_{name}.json"
        json_path.write_text(
            json.dumps(data, indent=2, sort_keys=True, default=str)
            + "\n",
            encoding="utf-8",
        )
        print(f"[machine-readable record in {json_path}]")


def timed(fn: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run ``fn`` once, returning ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# cached dataset builders (deterministic, shared across bench modules)
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def dblp_dataset():
    from repro.datasets.synthetic_dblp import coauthor_snapshots

    return coauthor_snapshots(
        n_authors=max(120, int(800 * SCALE)),
        n_communities=max(8, int(40 * SCALE)),
        seed=0,
    )


@functools.lru_cache(maxsize=None)
def dblp_difference_graphs():
    """The four DBLP difference graphs keyed as (setting, gd_type)."""
    from repro.core.difference import (
        DBLP_DISCRETE,
        difference_graph,
        discrete_difference_graph,
        flip,
    )

    dataset = dblp_dataset()
    weighted = difference_graph(dataset.g1, dataset.g2)
    discrete = discrete_difference_graph(dataset.g1, dataset.g2, DBLP_DISCRETE)
    return {
        ("Weighted", "Emerging"): weighted,
        ("Weighted", "Disappearing"): flip(weighted),
        ("Discrete", "Emerging"): discrete,
        ("Discrete", "Disappearing"): flip(discrete),
    }


@functools.lru_cache(maxsize=None)
def dm_corpus():
    from repro.datasets.synthetic_text import keyword_corpus

    return keyword_corpus(
        n_titles_per_era=max(400, int(3000 * SCALE)),
        n_background_words=max(60, int(300 * SCALE)),
        seed=1,
    )


@functools.lru_cache(maxsize=None)
def dm_difference_graphs():
    from repro.core.difference import difference_graph, flip

    corpus = dm_corpus()
    emerging = difference_graph(corpus.g1, corpus.g2)
    return {"Emerging": emerging, "Disappearing": flip(emerging)}


@functools.lru_cache(maxsize=None)
def wiki_dataset():
    from repro.datasets.synthetic_wiki import wiki_interactions

    return wiki_interactions(
        n_editors=max(200, int(1500 * SCALE)),
        blob_size=max(30, int(180 * SCALE)),
        seed=2,
    )


@functools.lru_cache(maxsize=None)
def wiki_difference_graphs():
    dataset = wiki_dataset()
    return {
        "Consistent": dataset.consistent_gd(),
        "Conflicting": dataset.conflicting_gd(),
    }


@functools.lru_cache(maxsize=None)
def douban_dataset():
    from repro.datasets.synthetic_douban import douban_network

    return douban_network(
        n_users=max(150, int(900 * SCALE)),
        n_communities=max(6, int(30 * SCALE)),
        seed=3,
    )


@functools.lru_cache(maxsize=None)
def douban_difference_graphs():
    dataset = douban_dataset()
    return {
        ("Movie", "Interest-Social"): dataset.gd("movie", "interest-social"),
        ("Movie", "Social-Interest"): dataset.gd("movie", "social-interest"),
        ("Book", "Interest-Social"): dataset.gd("book", "interest-social"),
        ("Book", "Social-Interest"): dataset.gd("book", "social-interest"),
    }


@functools.lru_cache(maxsize=None)
def dblp_c_dataset():
    from repro.datasets.synthetic_dblp import dblp_c_snapshots

    return dblp_c_snapshots(
        n_authors=max(400, int(4000 * SCALE)),
        n_communities=max(20, int(160 * SCALE)),
        seed=4,
    )


@functools.lru_cache(maxsize=None)
def dblp_c_difference_graphs():
    from repro.core.difference import (
        DBLP_DISCRETE,
        difference_graph,
        discrete_difference_graph,
    )

    dataset = dblp_c_dataset()
    return {
        "Weighted": difference_graph(dataset.g1, dataset.g2),
        "Discrete": discrete_difference_graph(
            dataset.g1, dataset.g2, DBLP_DISCRETE
        ),
    }


@functools.lru_cache(maxsize=None)
def actor_dataset():
    from repro.datasets.synthetic_actor import actor_network

    return actor_network(n_actors=max(250, int(2000 * SCALE)), seed=5)


@functools.lru_cache(maxsize=None)
def actor_difference_graphs():
    dataset = actor_dataset()
    return {
        "Weighted": dataset.weighted_gd(),
        "Discrete": dataset.discrete_gd(),
    }


@functools.lru_cache(maxsize=None)
def all_named_difference_graphs():
    """(data, setting, gd_type) -> GD for every Table II row."""
    rows = {}
    for (setting, gd_type), gd in dblp_difference_graphs().items():
        rows[("DBLP", setting, gd_type)] = gd
    for gd_type, gd in dm_difference_graphs().items():
        rows[("DM", "-", gd_type)] = gd
    for gd_type, gd in wiki_difference_graphs().items():
        rows[("Wiki", "-", gd_type)] = gd
    for (data, gd_type), gd in douban_difference_graphs().items():
        rows[(data, "-", gd_type)] = gd
    for setting, gd in dblp_c_difference_graphs().items():
        rows[("DBLP-C", setting, "-")] = gd
    for setting, gd in actor_difference_graphs().items():
        rows[("Actor", setting, "-")] = gd
    return rows
