"""Multi-tenant session layer — K live tenants vs K naive replays.

The serving claim of ``repro/service/sessions.py``: one process can
hold K concurrent stream sessions — each a resident
:class:`~repro.stream.engine.StreamingDCSEngine` with its own clock,
alert log and registry charge — and ingest interleaved event batches
faster than K independent :func:`snapshot_recompute` replays of the
same streams, **without changing a single alert for any tenant**.

The gate is throughput: aggregate events/sec through the session
manager (create, interleaved ``apply_events`` batches, cursor polls,
close) must be >= 3x the events/sec of the naive per-tenant replay
loop.  On one core there is no parallelism to hide behind — the whole
margin comes from the incremental engine each session wraps.
"""

from __future__ import annotations

from collections import defaultdict

from benchmarks._harness import emit, timed
from repro.analysis.reporting import Table
from repro.datasets.streaming import burst_event_stream
from repro.service.registry import GraphRegistry
from repro.service.sessions import SessionManager
from repro.stream import alert_keys, snapshot_recompute

TENANTS = 8
SPEEDUP_FLOOR = 3.0
WINDOW = 5
MIN_SCORE = 1e-6
#: steps per interleaved batch — every tenant advances in lockstep
#: rounds, so the manager is always holding K mid-stream engines.
BATCH_STEPS = 5
N_VERTICES = 250
N_STEPS = 30


def _workload(seed: int):
    return burst_event_stream(
        n_vertices=N_VERTICES,
        n_steps=N_STEPS,
        base_p=0.05,
        reobserve_p=0.003,
        anomaly_size=8,
        anomaly_start=N_STEPS // 2,
        anomaly_duration=3,
        seed=seed,
    )


def _by_chunk(stream):
    """The tenant's events grouped into BATCH_STEPS-sized step ranges."""
    chunks = defaultdict(list)
    for event in stream.log.events:
        chunks[event.t // BATCH_STEPS].append(event)
    n_chunks = (stream.n_steps + BATCH_STEPS - 1) // BATCH_STEPS
    return [chunks[i] for i in range(n_chunks)], n_chunks


def _run_sessions(streams):
    """Create K tenants, feed them in interleaved rounds, drain alerts.

    Returns ``{tenant: (alert_records, registry_peak_charge)}`` — the
    cursor-polled alert stream per tenant plus evidence the sessions
    were actually charged while resident.
    """
    registry = GraphRegistry(capacity=8, scale=0.0)
    manager = SessionManager(registry, max_sessions=TENANTS)
    sids = []
    for tenant, stream in enumerate(streams):
        session = manager.create(
            universe=stream.universe,
            window=WINDOW,
            min_score=MIN_SCORE,
            policy="exact",
        )
        sids.append(session.sid)
    chunked = [_by_chunk(stream) for stream in streams]
    n_rounds = max(n for _, n in chunked)
    records = {sid: [] for sid in sids}
    cursors = {sid: 0 for sid in sids}
    for round_index in range(n_rounds):
        close_to = min((round_index + 1) * BATCH_STEPS, N_STEPS)
        for sid, (chunks, _) in zip(sids, chunked):
            batch = (
                chunks[round_index] if round_index < len(chunks) else []
            )
            manager.apply_events(sid, batch, advance_to=close_to)
            fresh, cursors[sid], _ = manager.alerts_since(
                sid, cursors[sid]
            )
            records[sid].extend(fresh)
    peak_charge = registry.charged_cells
    for sid in sids:
        assert manager.close(sid) is not None
    assert manager.active == 0
    assert registry.charged_cells == 0
    return [records[sid] for sid in sids], peak_charge


def _run_naive(streams):
    """K independent snapshot-recompute replays (the tenant baseline)."""
    return [
        snapshot_recompute(
            stream.log.events,
            stream.universe,
            n_steps=stream.n_steps,
            window=WINDOW,
            min_score=MIN_SCORE,
        )
        for stream in streams
    ]


def test_sessions(benchmark):
    streams = [_workload(20 + tenant) for tenant in range(TENANTS)]
    total_events = sum(stream.n_events for stream in streams)

    def _sweep():
        (mine, peak_charge), t_sessions = timed(_run_sessions, streams)
        naive, t_naive = timed(_run_naive, streams)
        return mine, peak_charge, t_sessions, naive, t_naive

    mine, peak_charge, t_sessions, naive, t_naive = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    eps_sessions = total_events / t_sessions
    eps_naive = total_events / t_naive
    speedup = eps_sessions / eps_naive

    table = Table(
        title=f"{TENANTS} live stream sessions vs {TENANTS} naive replays",
        columns=[
            "tenants",
            "events",
            "naive (s)",
            "sessions (s)",
            "naive ev/s",
            "session ev/s",
            "speedup",
            "peak charge",
        ],
    )
    table.add_row(
        [
            TENANTS,
            total_events,
            f"{t_naive:.3f}",
            f"{t_sessions:.3f}",
            f"{eps_naive:.0f}",
            f"{eps_sessions:.0f}",
            f"{speedup:.1f}x",
            peak_charge,
        ]
    )
    emit(
        "sessions",
        table.render(),
        data={
            "tenants": TENANTS,
            "events": total_events,
            "naive_seconds": t_naive,
            "sessions_seconds": t_sessions,
            "events_per_second": eps_sessions,
            "speedup": speedup,
            "peak_charge": peak_charge,
            "gates": {
                "peak_charge_positive": peak_charge > 0,
                "speedup_floor": speedup >= SPEEDUP_FLOOR,
            },
        },
    )

    # 1. Per-tenant alert parity: every session saw exactly the alerts
    #    its own naive replay produces — same (step, subset) keys, same
    #    scores to float tolerance.
    for tenant, (session_alerts, reference) in enumerate(
        zip(mine, naive)
    ):
        keys = {
            (record["step"], frozenset(record["subset"]))
            for record in session_alerts
        }
        assert keys == alert_keys(reference), f"tenant {tenant}"
        reference_by_step = {alert.step: alert for alert in reference}
        for record in session_alerts:
            expected = reference_by_step[record["step"]]
            assert abs(record["score"] - expected.score) <= 1e-6 * max(
                1.0, abs(expected.score)
            ), f"tenant {tenant} step {record['step']}"
    # 2. The tenants were really resident together: the registry held a
    #    positive aggregate charge right up to the closes.
    assert peak_charge > 0

    # 3. The throughput gate.
    assert speedup >= SPEEDUP_FLOOR, (
        f"session throughput {speedup:.1f}x the naive replays — below "
        f"the {SPEEDUP_FLOOR}x floor ({total_events} events, "
        f"{TENANTS} tenants)"
    )
