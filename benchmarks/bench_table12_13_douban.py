"""Tables XII & XIII — DCS in the Douban social/interest networks.

Table XII: DCSAD (DCSGreedy vs GD-only vs GD+-only) on the four Douban
difference graphs.  Table XIII: DCSGA (NewSEA) on the same graphs.

The paper's key finding asserted here: for the **movie** interest, the
Interest-Social DCS is denser than the Social-Interest one; for
**books**, the opposite — even though the interest graphs have far fewer
edges than the social graph in both cases.
"""

from __future__ import annotations

from benchmarks._harness import douban_difference_graphs, emit
from repro.analysis.metrics import affinity, edge_density
from repro.analysis.reporting import Table, format_ratio, yes_no
from repro.core.dcsad import (
    dcs_greedy,
    greedy_on_gd_only,
    greedy_on_gd_plus_only,
)
from repro.core.newsea import new_sea
from repro.graph.cliques import is_positive_clique


def _run_all():
    out = {}
    for key, gd in douban_difference_graphs().items():
        out[key] = {
            "gd": gd,
            "dcs": dcs_greedy(gd),
            "gd_only": greedy_on_gd_only(gd),
            "gd_plus_only": greedy_on_gd_plus_only(gd),
            "ga": new_sea(gd.positive_part()),
        }
    return out


def test_table12_13_douban(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table12 = Table(
        title="Table XII layout: DCSAD on Douban data",
        columns=[
            "Interest",
            "GD Type",
            "Algorithm",
            "#Users",
            "Ave. Degree Diff",
            "Approx. Ratio",
            "Positive Clique?",
        ],
    )
    table13 = Table(
        title="Table XIII layout: DCSGA (NewSEA) on Douban data",
        columns=[
            "Interest",
            "GD Type",
            "#Users",
            "Graph Affinity Diff",
            "Edge Density Diff",
        ],
    )
    for (interest, gd_type), result in results.items():
        gd = result["gd"]
        for name, res in (
            ("DCSGreedy", result["dcs"]),
            ("GD only", result["gd_only"]),
            ("GD+ only", result["gd_plus_only"]),
        ):
            table12.add_row(
                [
                    interest,
                    gd_type,
                    name,
                    len(res.subset),
                    f"{res.density:.2f}",
                    format_ratio(res.ratio_bound),
                    yes_no(is_positive_clique(gd, res.subset)),
                ]
            )
        ga = result["ga"]
        table13.add_row(
            [
                interest,
                gd_type,
                len(ga.support),
                f"{affinity(gd, ga.x):.3f}",
                f"{edge_density(gd, ga.support):.3f}",
            ]
        )

    emit("table12_13_douban", table12.render() + "\n\n" + table13.render())

    # Shape assertions:
    movie_inter = results[("Movie", "Interest-Social")]["ga"]
    movie_social = results[("Movie", "Social-Interest")]["ga"]
    book_inter = results[("Book", "Interest-Social")]["ga"]
    book_social = results[("Book", "Social-Interest")]["ga"]
    # Paper Table XIII: movie 0.969 > 0.944; book 0.929 < 0.955.
    assert movie_inter.objective > movie_social.objective
    assert book_inter.objective < book_social.objective
    # All affinity answers are positive cliques; DCSAD >= DCSGA in size.
    for result in results.values():
        assert result["ga"].is_positive_clique
        assert len(result["dcs"].subset) >= len(result["ga"].support)
        assert result["dcs"].density >= result["gd_only"].density - 1e-9
        assert result["dcs"].density >= result["gd_plus_only"].density - 1e-9
