"""Fig. 1 — difference-graph construction.

Regenerates the Section III example (G1, G2 -> GD -> GD+) as edge lists
and benchmarks difference-graph construction at dataset scale.
"""

from __future__ import annotations

from benchmarks._harness import dblp_dataset, emit
from repro.core.difference import difference_graph
from repro.graph.graph import Graph
from repro.graph.io import edges_sorted


def _fig1_pair():
    g1 = Graph.from_edges(
        [(1, 2, 2.0), (2, 3, 2.0), (1, 4, 1.0), (3, 4, 3.0), (3, 5, 2.0), (4, 5, 5.0)]
    )
    g2 = Graph.from_edges(
        [(1, 2, 2.0), (2, 3, 3.0), (1, 4, 4.0), (1, 5, 1.0), (3, 4, 6.0), (4, 5, 3.0), (2, 5, 2.0)]
    )
    for v in range(1, 6):
        g1.add_vertex(v)
        g2.add_vertex(v)
    return g1, g2


def test_fig01_example(benchmark):
    g1, g2 = _fig1_pair()
    gd = benchmark(difference_graph, g1, g2)
    plus = gd.positive_part()

    lines = ["Fig. 1 example: GD = G2 - G1 and its positive part GD+", ""]
    lines.append("GD edges (u, v, D(u,v)):")
    for u, v, w in edges_sorted(gd):
        lines.append(f"  {u} -- {v}: {w:+g}")
    lines.append("GD+ edges:")
    for u, v, w in edges_sorted(plus):
        lines.append(f"  {u} -- {v}: {w:+g}")
    lines.append("")
    lines.append(
        "Check: edge (1,2) has equal weight in G1 and G2 and is absent "
        "from GD; mixed signs present as in the paper's drawing."
    )
    emit("fig01_difference_graph", "\n".join(lines))

    assert not gd.has_edge(1, 2)
    assert gd.weight(1, 4) == 3.0
    assert all(w > 0 for _, _, w in plus.edges())


def test_fig01_construction_at_scale(benchmark):
    """Difference-graph construction on the DBLP-sized pair.

    The paper quotes O((m1 + m2) log n + n); this tracks the realised
    cost on the bench dataset.
    """
    dataset = dblp_dataset()
    gd = benchmark(difference_graph, dataset.g1, dataset.g2)
    assert gd.num_vertices == dataset.g1.num_vertices
