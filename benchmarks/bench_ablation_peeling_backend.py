"""Ablation — greedy-peeling priority backend: indexed heap vs segment tree.

The paper suggests a segment tree [Bentley 1977] for locating the
minimum-degree vertex; an addressable binary heap achieves the same
``O((n+m) log n)`` bound.  This bench times both backends on the largest
difference graph and asserts they peel to identical densities.
"""

from __future__ import annotations

import pytest

from benchmarks._harness import dblp_c_difference_graphs, emit
from repro.peeling.greedy import greedy_peel


@pytest.fixture(scope="module")
def gd():
    return dblp_c_difference_graphs()["Weighted"]


def test_peel_heap_backend(benchmark, gd):
    result = benchmark(greedy_peel, gd, "heap")
    assert result.subset


def test_peel_segment_tree_backend(benchmark, gd):
    result = benchmark(greedy_peel, gd, "segment_tree")
    assert result.subset


def test_backends_agree(benchmark, gd):
    heap, tree = benchmark.pedantic(
        lambda: (
            greedy_peel(gd, backend="heap"),
            greedy_peel(gd, backend="segment_tree"),
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_peeling_backend",
        "Peeling backend ablation (DBLP-C Weighted GD)\n"
        f"  heap         : density {heap.density:.4f}, |S| = {len(heap.subset)}\n"
        f"  segment tree : density {tree.density:.4f}, |S| = {len(tree.subset)}\n"
        "Densities must agree exactly; timing columns come from the\n"
        "pytest-benchmark table of this module.",
    )
    assert heap.density == pytest.approx(tree.density)
