"""Ablation — heuristic quality against the exact oracles (small graphs).

DCSAD and DCSGA are NP-hard, so quality can only be audited exactly at
small scale.  Over a batch of random signed graphs this bench measures:

* the DCSGreedy density as a fraction of the exact DCSAD optimum, and
  how often the data-dependent ratio is far more pessimistic than the
  realised gap;
* the NewSEA objective as a fraction of the exact DCSGA optimum;
* Goldberg's exact densest subgraph vs greedy peeling on ``GD+``
  (Charikar's 2-approximation in practice).
"""

from __future__ import annotations

from benchmarks._harness import emit
from repro.analysis.reporting import Table
from repro.core.dcsad import dcs_greedy
from repro.core.exact import exact_dcsad, exact_dcsga
from repro.core.newsea import new_sea
from repro.flow.goldberg import densest_subgraph
from repro.graph.generators import random_signed_graph
from repro.peeling.greedy import greedy_peel

N_TRIALS = 40


def _audit():
    ad_ratios, ga_ratios, peel_ratios, bounds = [], [], [], []
    for seed in range(N_TRIALS):
        gd = random_signed_graph(12, 0.45, seed=seed)
        opt_ad = exact_dcsad(gd).density
        greedy = dcs_greedy(gd)
        if opt_ad > 0:
            ad_ratios.append(greedy.density / opt_ad)
        if greedy.ratio_bound is not None:
            bounds.append(greedy.ratio_bound)

        opt_ga = exact_dcsga(gd).objective
        ga = new_sea(gd.positive_part())
        if opt_ga > 0:
            ga_ratios.append(ga.objective / opt_ga)

        gd_plus = gd.positive_part()
        if gd_plus.num_edges:
            _, exact_density = densest_subgraph(gd_plus)
            peel = greedy_peel(gd_plus)
            if exact_density > 0:
                peel_ratios.append(peel.density / exact_density)
    return ad_ratios, ga_ratios, peel_ratios, bounds


def test_ablation_exactness(benchmark):
    ad, ga, peel, bounds = benchmark.pedantic(_audit, rounds=1, iterations=1)

    def describe(name, ratios):
        return [
            name,
            f"{min(ratios):.3f}",
            f"{sum(ratios) / len(ratios):.3f}",
            f"{sum(1 for r in ratios if r >= 0.999)}/{len(ratios)}",
        ]

    table = Table(
        title=(
            f"Heuristics vs exact oracles on {N_TRIALS} random signed "
            "graphs (n=12, p=0.45)"
        ),
        columns=["Algorithm vs oracle", "Worst ratio", "Mean ratio", "Exact hits"],
    )
    table.add_row(describe("DCSGreedy / exact DCSAD", ad))
    table.add_row(describe("NewSEA / exact DCSGA", ga))
    table.add_row(describe("Greedy peel / Goldberg (GD+)", peel))
    table.add_row(
        [
            "data-dependent ratio (Thm 2)",
            f"max {max(bounds):.2f}",
            f"mean {sum(bounds) / len(bounds):.2f}",
            "-",
        ]
    )
    emit("ablation_exactness", table.render())

    # Realised quality is far better than the worst-case theory:
    assert min(ad) >= 0.75
    assert min(ga) >= 0.90
    # Charikar's guarantee (and typical near-optimality) on GD+.
    assert min(peel) >= 0.5
    assert sum(peel) / len(peel) >= 0.9
    # NewSEA hits the exact optimum on the vast majority of instances.
    assert sum(1 for r in ga if r >= 0.999) >= 0.8 * len(ga)
