"""Service gates: warm-cache throughput and envelope byte-identity.

The workload is a 32-query mixed DCSAD/DCSGA sweep — 4 uploaded graph
pairs x {dcsad, dcsga} x {k=1, k=2} x {python, sparse} — issued two
ways:

* **per-query CLI subprocess loop** — what interactive use looked like
  before the service: every query pays interpreter start, imports,
  file reads and graph preparation (``repro <kind> g1 g2 --json``);
* **resident service** — one ``repro serve`` process; the pairs are
  uploaded once, the sweep runs twice, and the *second* (warm) pass is
  timed: every answer comes from the warm ``PreparedGraph`` LRU and the
  content-addressed result cache.

Two gates:

* **>= 5x warm-cache throughput** over the CLI loop (in practice the
  margin is orders of magnitude — a warm hit is a cache lookup);
* **byte-identical envelopes**: each service ``result`` record equals
  the ``repro --json`` record for the same query, byte for byte, after
  dropping the out-of-band ``timings``.  Both processes run under
  ``PYTHONHASHSEED=0``: solver float summation follows hash order, so
  byte-stability across *processes* is defined at a pinned seed (the
  in-process canonical-payload invariance is covered by the test
  suite).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

import pytest

from benchmarks._harness import emit
from repro.analysis.reporting import Table
from repro.graph.generators import random_signed_graph
from repro.graph.io import write_pair
from repro.graph.sparse import scipy_available

N_PAIRS = 4
BACKENDS = ("python", "sparse") if scipy_available() else ("python",)


def _pair_files(tmp_path):
    """Four deterministic (g1, g2) edge-list pairs on string labels."""
    files = []
    for index in range(N_PAIRS):
        names = {i: f"v{i:02d}" for i in range(36)}
        g1 = (
            random_signed_graph(36, 0.18, seed=100 + index)
            .positive_part()
            .relabeled(names)
        )
        g2 = (
            random_signed_graph(36, 0.22, seed=200 + index)
            .positive_part()
            .relabeled(names)
        )
        for v in g1.vertices():
            g2.add_vertex(v)
        for v in g2.vertices():
            g1.add_vertex(v)
        p1 = tmp_path / f"pair{index}_g1.txt"
        p2 = tmp_path / f"pair{index}_g2.txt"
        write_pair(g1, g2, p1, p2)
        files.append((str(p1), str(p2)))
    return files


def _sweep(files):
    """The 32-query mixed sweep: (pair index, kind, k, backend)."""
    queries = []
    for index in range(len(files)):
        for kind in ("dcsad", "dcsga"):
            for k in (1, 2):
                for backend in BACKENDS:
                    queries.append((index, kind, k, backend))
    while len(queries) < 32:  # no SciPy: double the python sweep via k
        index, kind, k, backend = queries[len(queries) % 16]
        queries.append((index, kind, k + 2, backend))
    return queries


def _env():
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"  # cross-process byte-stability
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _strip(record):
    return json.dumps(
        {k: v for k, v in record.items() if k != "timings"}, sort_keys=True
    )


def _cli_loop(files, queries, env):
    """The baseline: one ``repro <kind> --json`` subprocess per query."""
    records = []
    for index, kind, k, backend in queries:
        g1, g2 = files[index]
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", kind, g1, g2,
                "--json", "--top-k", str(k), "--backend", backend,
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        records.append(json.loads(proc.stdout))
    return records


def _post(base, path, payload, timeout=120):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(base, path, timeout=30):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.loads(response.read())


@pytest.fixture
def server(tmp_path_factory):
    """One resident ``repro serve`` process on an ephemeral port."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--scale", "0.0", "--warm-capacity", "8",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        assert match, f"no listening banner: {banner!r}"
        yield f"http://{match.group(1)}:{match.group(2)}"
    finally:
        proc.terminate()
        proc.wait(timeout=10)


def test_service_warm_throughput_and_byte_identity(
    benchmark, server, tmp_path
):
    files = _pair_files(tmp_path)
    queries = _sweep(files)
    assert len(queries) == 32
    env = _env()

    # Upload every pair once — the service's named warm graphs.
    for index, (g1, g2) in enumerate(files):
        with open(g1, encoding="utf-8") as fh:
            g1_text = fh.read()
        with open(g2, encoding="utf-8") as fh:
            g2_text = fh.read()
        uploaded = _post(
            server,
            "/v1/graphs",
            {"name": f"pair{index}", "g1": g1_text, "g2": g2_text},
        )
        assert len(uploaded["fingerprint"]) == 64

    def service_pass():
        bodies = []
        for index, kind, k, backend in queries:
            bodies.append(
                _post(
                    server,
                    "/v1/solve",
                    {
                        "graph": f"pair{index}",
                        "kind": kind,
                        "k": k,
                        "backend": backend,
                    },
                )
            )
        return bodies

    # Cold pass: fills the result cache (preps are already warm).
    start = time.perf_counter()
    cold_bodies = service_pass()
    cold_seconds = time.perf_counter() - start

    # Warm pass: the gated path — every answer served from cache.
    start = time.perf_counter()
    warm_bodies = benchmark.pedantic(service_pass, rounds=1, iterations=1)
    warm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cli_records = _cli_loop(files, queries, env)
    cli_seconds = time.perf_counter() - start

    metrics = _get(server, "/metrics")
    speedup = cli_seconds / warm_seconds

    table = Table(
        title=(
            "Query service: 32-query mixed DCSAD/DCSGA sweep "
            f"(4 uploaded pairs x kinds x k x {len(BACKENDS)} backends)"
        ),
        columns=["Path", "Wall (s)", "Per query (ms)", "Cached"],
    )
    table.add_row(
        [
            "CLI subprocess loop",
            f"{cli_seconds:.3f}",
            f"{1000 * cli_seconds / 32:.1f}",
            "0/32",
        ]
    )
    table.add_row(
        [
            "service, cold (prep warm)",
            f"{cold_seconds:.3f}",
            f"{1000 * cold_seconds / 32:.1f}",
            f"{sum(b['cached'] for b in cold_bodies)}/32",
        ]
    )
    table.add_row(
        [
            "service, warm cache",
            f"{warm_seconds:.3f}",
            f"{1000 * warm_seconds / 32:.1f}",
            f"{sum(b['cached'] for b in warm_bodies)}/32",
        ]
    )
    emit(
        "service_throughput",
        table.render()
        + f"\nwarm-cache speedup over CLI loop: {speedup:.1f}x"
        + "\ncache hit rate: "
        f"{metrics['cache']['hit_rate']:.2f}, warm prepared: "
        f"{metrics['warm']['prepared']}, p95 latency: "
        f"{metrics['latency']['p95_seconds'] * 1000:.1f} ms",
        data={
            "cli_seconds": cli_seconds,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "p95_seconds": metrics["latency"]["p95_seconds"],
            "cache_hit_rate": metrics["cache"]["hit_rate"],
            "gates": {
                "all_ok": all(
                    b["status"] == "ok" for b in cold_bodies + warm_bodies
                ),
                "warm_all_cached": all(b["cached"] for b in warm_bodies),
                "byte_identical": [
                    _strip(b["result"]) for b in cold_bodies
                ] == [_strip(r) for r in cli_records],
                "speedup_floor_5x": speedup >= 5.0,
            },
        },
    )

    # Gate 1: every request answered, warm pass fully cached.
    assert all(b["status"] == "ok" for b in cold_bodies + warm_bodies)
    assert all(b["cached"] for b in warm_bodies)

    # Gate 2: service envelopes byte-identical to `repro --json` for the
    # same requests (out-of-band timings dropped on both sides).
    service_canonical = [_strip(b["result"]) for b in cold_bodies]
    cli_canonical = [_strip(r) for r in cli_records]
    assert service_canonical == cli_canonical
    # ... and the warm pass replays exactly the same bytes.
    assert [_strip(b["result"]) for b in warm_bodies] == service_canonical

    # Gate 3: >= 5x warm-cache throughput over the per-query CLI loop.
    assert speedup >= 5.0, (
        f"warm service must be >= 5x over the CLI loop, got {speedup:.1f}x "
        f"(cli {cli_seconds:.3f}s, warm {warm_seconds:.3f}s)"
    )
