"""Scalability — DCSAD/DCSGA cost vs input size across backends.

Two sweeps:

1. **Quasi-linear growth** (the paper's claim): DCSGreedy runs in
   ``O((m1 + m2 + n) log n)`` ("efficient and scalable in practice",
   Section VI-D) on a geometric size sweep of the DBLP-style generator.
2. **Backend speedup**: the vectorised CSR backend and the Numba
   ``native`` backend against the pure-Python reference on an
   *emerging dense community* workload — a planted positive
   near-clique in a noisy difference graph, the regime where DCSGA
   supports and frontiers grow large and dict loops drown.  At the
   largest size the sparse backend must be >= 5x faster than python on
   the NewSEA pipeline and on the replicator-dynamics kernel; when
   Numba is installed, the native backend must in turn be >= 5x faster
   than *sparse* on NewSEA (the 2-coordinate-descent inner loop is the
   sparse backend's residual pure-Python cost), with envelope payloads
   byte-identical to sparse and answer-identical to python (the parity
   contracts of ``tests/test_sparse_backend.py`` and
   ``tests/test_native_backend.py``).  The native backend is JIT-warmed
   once before the timed region — exactly what the batch pool
   initialisers and ``repro serve`` do in production.

Note the flip side, documented in the README backend guide: on
workloads with tiny supports and heavy smart-init pruning (the DBLP
sweep below), the python backend is competitive or faster — fixed
NumPy call overhead beats 3-element dict loops.  The sparse backend is
for scale, not a universal win.
"""

from __future__ import annotations

import json
import random

from benchmarks._harness import emit, timed
from repro.affinity.replicator import replicator_dynamics
from repro.analysis.reporting import Table
from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph
from repro.core.newsea import new_sea
from repro.datasets.synthetic_dblp import coauthor_snapshots
from repro.graph.graph import Graph

SIZES = (200, 400, 800, 1600)

#: (n, clique size) steps of the planted emerging-community sweep; the
#: largest is the >= 5x assertion point.
PLANTED_SIZES = ((1500, 80), (3000, 150), (6000, 260))
SPEEDUP_FLOOR = 5.0
#: native-over-sparse floor for the NewSEA pipeline (asserted only when
#: Numba is installed; the sweep records "n/a" columns otherwise).
NATIVE_SPEEDUP_FLOOR = 5.0


def _native_available() -> bool:
    from repro.core.native_kernels import numba_available
    from repro.graph.sparse import scipy_available

    return scipy_available() and numba_available()


def _envelope_payload(gd: Graph, backend: str) -> str:
    """Canonical affinity-envelope payload with the backend name
    stripped — the bytes that must not depend on which compiled path
    produced them."""
    from repro.engine.envelope import SolveRequest, solve
    from repro.engine.prepared import PreparedGraph

    result = solve(
        SolveRequest(measure="affinity", backend=backend), PreparedGraph(gd)
    )
    payload = result.payload()
    payload["params"].pop("backend", None)
    return json.dumps(payload, sort_keys=True)


def _sweep():
    rows = []
    for n in SIZES:
        dataset = coauthor_snapshots(
            n_authors=n, n_communities=max(8, n // 20), seed=17
        )
        gd, t_build = timed(difference_graph, dataset.g1, dataset.g2)
        ad, t_ad = timed(dcs_greedy, gd)
        ga, t_ga = timed(new_sea, gd.positive_part())
        rows.append(
            {
                "n": n,
                "m": gd.num_edges,
                "t_build": t_build,
                "t_ad": t_ad,
                "t_ga": t_ga,
                "ad_value": ad.density,
                "ga_value": ga.objective,
            }
        )
    return rows


def _planted_contrast(n: int, k: int, seed: int) -> Graph:
    """A difference graph with one planted emerging community.

    ``G2 - G1`` retains a dense positive near-clique of size *k* (the
    emerging group) on a background of ``2n`` weak random contrast
    edges — the Table III/V story at adjustable scale.
    """
    rng = random.Random(seed)
    gd = Graph()
    gd.add_vertices(range(n))
    for i in range(k):
        for j in range(i + 1, k):
            gd.add_edge(i, j, rng.uniform(0.5, 1.5))
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not gd.has_edge(u, v):
            gd.add_edge(u, v, rng.uniform(0.01, 0.3))
    return gd


def _backend_sweep():
    native = _native_available()
    if native:
        from repro.engine import get_backend

        # JIT once outside every timed region — the production posture
        # (batch pool initialisers / `repro serve` warm-up).
        get_backend("native").warm()
    rows = []
    for n, k in PLANTED_SIZES:
        gd = _planted_contrast(n, k, seed=11)
        gd_plus = gd.positive_part()
        ga_py, t_py = timed(new_sea, gd_plus)
        ga_sp, t_sp = timed(new_sea, gd_plus, backend="sparse")
        ad_py, t_ad_py = timed(dcs_greedy, gd)
        ad_sp, t_ad_sp = timed(dcs_greedy, gd, backend="sparse")
        x0 = {u: 1.0 / gd_plus.num_vertices for u in gd_plus.vertices()}
        rep_py, t_rep_py = timed(
            replicator_dynamics, gd_plus, x0, max_iterations=50
        )
        rep_sp, t_rep_sp = timed(
            replicator_dynamics, gd_plus, x0, max_iterations=50, backend="sparse"
        )
        row = {
            "n": n,
            "k": k,
            "m": gd.num_edges,
            "t_py": t_py,
            "t_sp": t_sp,
            "speedup_ga": t_py / t_sp,
            "t_ad_py": t_ad_py,
            "t_ad_sp": t_ad_sp,
            "t_rep_py": t_rep_py,
            "t_rep_sp": t_rep_sp,
            "speedup_rep": t_rep_py / t_rep_sp,
            "support_equal": ga_py.support == ga_sp.support,
            "subset_equal": ad_py.subset == ad_sp.subset,
            "rep_objective_gap": abs(rep_py.objective - rep_sp.objective),
            "ga_py": ga_py,
            "ga_sp": ga_sp,
            "t_nat": None,
            "speedup_nat": None,
            "t_rep_nat": None,
            "nat_support_equal": None,
            "nat_objective_equal": None,
        }
        if native:
            ga_nat, t_nat = timed(new_sea, gd_plus, backend="native")
            rep_nat, t_rep_nat = timed(
                replicator_dynamics,
                gd_plus,
                x0,
                max_iterations=50,
                backend="native",
            )
            row.update(
                t_nat=t_nat,
                speedup_nat=t_sp / t_nat,
                t_rep_nat=t_rep_nat,
                nat_support_equal=ga_nat.support == ga_sp.support,
                # Kernel parity contract: NewSEA is bitwise vs sparse.
                nat_objective_equal=ga_nat.objective == ga_sp.objective,
                nat_rep_iterations_equal=(
                    rep_nat.iterations == rep_sp.iterations
                ),
            )
        rows.append(row)
    envelopes = None
    if native:
        # Byte-identity of the answer envelope at the gate size:
        # identical bytes sparse<->native once the backend name is
        # stripped; python agrees on the answer (vertices + density to
        # summation-order precision) but not bytes.
        n, k = PLANTED_SIZES[-1]
        gd = _planted_contrast(n, k, seed=11)
        envelopes = {
            backend: _envelope_payload(gd, backend)
            for backend in ("python", "sparse", "native")
        }
    return rows, envelopes


def _run_all():
    backend_rows, envelopes = _backend_sweep()
    return _sweep(), backend_rows, envelopes


def test_scalability(benchmark):
    rows, backend_rows, envelopes = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )

    table = Table(
        title="Scalability sweep (DBLP-style pairs)",
        columns=["n", "m(GD)", "build (s)", "DCSGreedy (s)", "NewSEA (s)"],
    )
    for row in rows:
        table.add_row(
            [
                row["n"],
                row["m"],
                f"{row['t_build']:.4f}",
                f"{row['t_ad']:.4f}",
                f"{row['t_ga']:.4f}",
            ]
        )
    emit(
        "scalability",
        table.render(),
        data={
            "rows": [
                {
                    "n": row["n"],
                    "m": row["m"],
                    "build_seconds": row["t_build"],
                    "dcsad_seconds": row["t_ad"],
                    "dcsga_seconds": row["t_ga"],
                }
                for row in rows
            ],
        },
    )

    backend_table = Table(
        title="Backend speedup (planted emerging community)",
        columns=[
            "n",
            "k",
            "m(GD)",
            "NewSEA py (s)",
            "NewSEA sparse (s)",
            "speedup",
            "replicator speedup",
            "NewSEA native (s)",
            "native/sparse",
        ],
    )
    for row in backend_rows:
        backend_table.add_row(
            [
                row["n"],
                row["k"],
                row["m"],
                f"{row['t_py']:.3f}",
                f"{row['t_sp']:.3f}",
                f"{row['speedup_ga']:.1f}x",
                f"{row['speedup_rep']:.1f}x",
                "n/a" if row["t_nat"] is None else f"{row['t_nat']:.3f}",
                (
                    "n/a (no numba)"
                    if row["speedup_nat"] is None
                    else f"{row['speedup_nat']:.1f}x"
                ),
            ]
        )
    largest = backend_rows[-1]
    emit(
        "scalability_backends",
        backend_table.render(),
        data={
            "rows": [
                {
                    "n": row["n"],
                    "k": row["k"],
                    "m": row["m"],
                    "python_seconds": row["t_py"],
                    "sparse_seconds": row["t_sp"],
                    "native_seconds": row["t_nat"],
                    "speedup_ga": row["speedup_ga"],
                    "speedup_rep": row["speedup_rep"],
                    "speedup_native": row["speedup_nat"],
                }
                for row in backend_rows
            ],
            "gates": {
                "sparse_floor": largest["speedup_ga"] >= SPEEDUP_FLOOR
                and largest["speedup_rep"] >= SPEEDUP_FLOOR,
                "native_floor": (
                    None
                    if largest["t_nat"] is None
                    else largest["speedup_nat"] >= NATIVE_SPEEDUP_FLOOR
                ),
                "answers_agree": all(
                    row["support_equal"] and row["subset_equal"]
                    for row in backend_rows
                ),
            },
        },
    )

    # Quasi-linear growth check for DCSGreedy: when the input grows by
    # factor g, time grows by at most ~g^1.5 (generous slack for noise on
    # sub-100ms measurements).
    first, last = rows[0], rows[-1]
    growth = (last["n"] + last["m"]) / (first["n"] + first["m"])
    time_growth = last["t_ad"] / max(first["t_ad"], 1e-4)
    assert time_growth <= growth ** 1.5 * 3.0
    # Everything completed with positive contrast found.
    assert all(row["ad_value"] > 0 for row in rows)
    assert all(row["ga_value"] > 0 for row in rows)

    # Backend acceptance: at the largest planted size the sparse backend
    # is >= 5x faster on the DCSGA pipeline and on the replicator
    # kernel, and both backends agree on every answer.
    largest = backend_rows[-1]
    assert largest["speedup_ga"] >= SPEEDUP_FLOOR, (
        f"NewSEA sparse speedup {largest['speedup_ga']:.1f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )
    assert largest["speedup_rep"] >= SPEEDUP_FLOOR, (
        f"replicator sparse speedup {largest['speedup_rep']:.1f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )
    for row in backend_rows:
        assert row["support_equal"], f"NewSEA support mismatch at n={row['n']}"
        assert row["subset_equal"], f"peel subset mismatch at n={row['n']}"
        assert row["rep_objective_gap"] < 1e-9
        assert abs(row["ga_py"].objective - row["ga_sp"].objective) <= (
            1e-6 * max(1.0, abs(row["ga_py"].objective))
        )

    # Native gate — only when Numba is installed (the sweep above left
    # the columns at None otherwise, and the table reads "n/a").
    if largest["t_nat"] is not None:
        assert largest["speedup_nat"] >= NATIVE_SPEEDUP_FLOOR, (
            f"NewSEA native speedup {largest['speedup_nat']:.1f}x over "
            f"sparse is below the {NATIVE_SPEEDUP_FLOOR}x floor"
        )
        for row in backend_rows:
            assert row["nat_support_equal"], (
                f"native NewSEA support mismatch at n={row['n']}"
            )
            assert row["nat_objective_equal"], (
                f"native NewSEA objective not bitwise-equal to sparse "
                f"at n={row['n']}"
            )
            assert row["nat_rep_iterations_equal"], (
                f"native replicator trajectory diverged at n={row['n']}"
            )
        assert envelopes is not None
        assert envelopes["native"] == envelopes["sparse"], (
            "affinity envelope payload is not byte-identical between "
            "the native and sparse backends"
        )
        py = json.loads(envelopes["python"])
        nat = json.loads(envelopes["native"])
        assert py["vertices"] == nat["vertices"]
        assert abs(py["density"] - nat["density"]) <= 1e-6 * max(
            1.0, abs(py["density"])
        )
