"""Scalability — DCSAD/DCSGA cost vs input size.

The paper claims DCSGreedy runs in ``O((m1 + m2 + n) log n)`` ("efficient
and scalable in practice", Section VI-D) and argues NewSEA scales through
the smart-initialisation prune.  This bench measures both on a geometric
size sweep of the DBLP-style generator and asserts quasi-linear growth
for DCSGreedy (cost ratio grows at most ~1.5x faster than input size).
"""

from __future__ import annotations

from benchmarks._harness import emit, timed
from repro.analysis.reporting import Table
from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph
from repro.core.newsea import new_sea
from repro.datasets.synthetic_dblp import coauthor_snapshots

SIZES = (200, 400, 800, 1600)


def _sweep():
    rows = []
    for n in SIZES:
        dataset = coauthor_snapshots(
            n_authors=n, n_communities=max(8, n // 20), seed=17
        )
        gd, t_build = timed(difference_graph, dataset.g1, dataset.g2)
        ad, t_ad = timed(dcs_greedy, gd)
        ga, t_ga = timed(new_sea, gd.positive_part())
        rows.append(
            {
                "n": n,
                "m": gd.num_edges,
                "t_build": t_build,
                "t_ad": t_ad,
                "t_ga": t_ga,
                "ad_value": ad.density,
                "ga_value": ga.objective,
            }
        )
    return rows


def test_scalability(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = Table(
        title="Scalability sweep (DBLP-style pairs)",
        columns=["n", "m(GD)", "build (s)", "DCSGreedy (s)", "NewSEA (s)"],
    )
    for row in rows:
        table.add_row(
            [
                row["n"],
                row["m"],
                f"{row['t_build']:.4f}",
                f"{row['t_ad']:.4f}",
                f"{row['t_ga']:.4f}",
            ]
        )
    emit("scalability", table.render())

    # Quasi-linear growth check for DCSGreedy: when the input grows by
    # factor g, time grows by at most ~g^1.5 (generous slack for noise on
    # sub-100ms measurements).
    first, last = rows[0], rows[-1]
    growth = (last["n"] + last["m"]) / (first["n"] + first["m"])
    time_growth = last["t_ad"] / max(first["t_ad"], 1e-4)
    assert time_growth <= growth ** 1.5 * 3.0
    # Everything completed with positive contrast found.
    assert all(row["ad_value"] > 0 for row in rows)
    assert all(row["ga_value"] > 0 for row in rows)
