"""Scalability — DCSAD/DCSGA cost vs input size, python vs sparse backend.

Two sweeps:

1. **Quasi-linear growth** (the paper's claim): DCSGreedy runs in
   ``O((m1 + m2 + n) log n)`` ("efficient and scalable in practice",
   Section VI-D) on a geometric size sweep of the DBLP-style generator.
2. **Backend speedup**: the vectorised CSR backend against the
   pure-Python reference on an *emerging dense community* workload —
   a planted positive near-clique in a noisy difference graph, the
   regime where DCSGA supports and frontiers grow large and dict loops
   drown.  At the largest size the sparse backend must be >= 5x faster
   on the NewSEA pipeline and on the replicator-dynamics kernel, while
   agreeing on the answer (the parity contract of
   ``tests/test_sparse_backend.py``).

Note the flip side, documented in the README backend guide: on
workloads with tiny supports and heavy smart-init pruning (the DBLP
sweep below), the python backend is competitive or faster — fixed
NumPy call overhead beats 3-element dict loops.  The sparse backend is
for scale, not a universal win.
"""

from __future__ import annotations

import random

from benchmarks._harness import emit, timed
from repro.affinity.replicator import replicator_dynamics
from repro.analysis.reporting import Table
from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph
from repro.core.newsea import new_sea
from repro.datasets.synthetic_dblp import coauthor_snapshots
from repro.graph.graph import Graph

SIZES = (200, 400, 800, 1600)

#: (n, clique size) steps of the planted emerging-community sweep; the
#: largest is the >= 5x assertion point.
PLANTED_SIZES = ((1500, 80), (3000, 150), (6000, 260))
SPEEDUP_FLOOR = 5.0


def _sweep():
    rows = []
    for n in SIZES:
        dataset = coauthor_snapshots(
            n_authors=n, n_communities=max(8, n // 20), seed=17
        )
        gd, t_build = timed(difference_graph, dataset.g1, dataset.g2)
        ad, t_ad = timed(dcs_greedy, gd)
        ga, t_ga = timed(new_sea, gd.positive_part())
        rows.append(
            {
                "n": n,
                "m": gd.num_edges,
                "t_build": t_build,
                "t_ad": t_ad,
                "t_ga": t_ga,
                "ad_value": ad.density,
                "ga_value": ga.objective,
            }
        )
    return rows


def _planted_contrast(n: int, k: int, seed: int) -> Graph:
    """A difference graph with one planted emerging community.

    ``G2 - G1`` retains a dense positive near-clique of size *k* (the
    emerging group) on a background of ``2n`` weak random contrast
    edges — the Table III/V story at adjustable scale.
    """
    rng = random.Random(seed)
    gd = Graph()
    gd.add_vertices(range(n))
    for i in range(k):
        for j in range(i + 1, k):
            gd.add_edge(i, j, rng.uniform(0.5, 1.5))
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not gd.has_edge(u, v):
            gd.add_edge(u, v, rng.uniform(0.01, 0.3))
    return gd


def _backend_sweep():
    rows = []
    for n, k in PLANTED_SIZES:
        gd = _planted_contrast(n, k, seed=11)
        gd_plus = gd.positive_part()
        ga_py, t_py = timed(new_sea, gd_plus)
        ga_sp, t_sp = timed(new_sea, gd_plus, backend="sparse")
        ad_py, t_ad_py = timed(dcs_greedy, gd)
        ad_sp, t_ad_sp = timed(dcs_greedy, gd, backend="sparse")
        x0 = {u: 1.0 / gd_plus.num_vertices for u in gd_plus.vertices()}
        rep_py, t_rep_py = timed(
            replicator_dynamics, gd_plus, x0, max_iterations=50
        )
        rep_sp, t_rep_sp = timed(
            replicator_dynamics, gd_plus, x0, max_iterations=50, backend="sparse"
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "m": gd.num_edges,
                "t_py": t_py,
                "t_sp": t_sp,
                "speedup_ga": t_py / t_sp,
                "t_ad_py": t_ad_py,
                "t_ad_sp": t_ad_sp,
                "t_rep_py": t_rep_py,
                "t_rep_sp": t_rep_sp,
                "speedup_rep": t_rep_py / t_rep_sp,
                "support_equal": ga_py.support == ga_sp.support,
                "subset_equal": ad_py.subset == ad_sp.subset,
                "rep_objective_gap": abs(rep_py.objective - rep_sp.objective),
                "ga_py": ga_py,
                "ga_sp": ga_sp,
            }
        )
    return rows


def _run_all():
    return _sweep(), _backend_sweep()


def test_scalability(benchmark):
    rows, backend_rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = Table(
        title="Scalability sweep (DBLP-style pairs)",
        columns=["n", "m(GD)", "build (s)", "DCSGreedy (s)", "NewSEA (s)"],
    )
    for row in rows:
        table.add_row(
            [
                row["n"],
                row["m"],
                f"{row['t_build']:.4f}",
                f"{row['t_ad']:.4f}",
                f"{row['t_ga']:.4f}",
            ]
        )
    emit("scalability", table.render())

    backend_table = Table(
        title="Backend speedup (planted emerging community)",
        columns=[
            "n",
            "k",
            "m(GD)",
            "NewSEA py (s)",
            "NewSEA sparse (s)",
            "speedup",
            "replicator speedup",
        ],
    )
    for row in backend_rows:
        backend_table.add_row(
            [
                row["n"],
                row["k"],
                row["m"],
                f"{row['t_py']:.3f}",
                f"{row['t_sp']:.3f}",
                f"{row['speedup_ga']:.1f}x",
                f"{row['speedup_rep']:.1f}x",
            ]
        )
    emit("scalability_backends", backend_table.render())

    # Quasi-linear growth check for DCSGreedy: when the input grows by
    # factor g, time grows by at most ~g^1.5 (generous slack for noise on
    # sub-100ms measurements).
    first, last = rows[0], rows[-1]
    growth = (last["n"] + last["m"]) / (first["n"] + first["m"])
    time_growth = last["t_ad"] / max(first["t_ad"], 1e-4)
    assert time_growth <= growth ** 1.5 * 3.0
    # Everything completed with positive contrast found.
    assert all(row["ad_value"] > 0 for row in rows)
    assert all(row["ga_value"] > 0 for row in rows)

    # Backend acceptance: at the largest planted size the sparse backend
    # is >= 5x faster on the DCSGA pipeline and on the replicator
    # kernel, and both backends agree on every answer.
    largest = backend_rows[-1]
    assert largest["speedup_ga"] >= SPEEDUP_FLOOR, (
        f"NewSEA sparse speedup {largest['speedup_ga']:.1f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )
    assert largest["speedup_rep"] >= SPEEDUP_FLOOR, (
        f"replicator sparse speedup {largest['speedup_rep']:.1f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )
    for row in backend_rows:
        assert row["support_equal"], f"NewSEA support mismatch at n={row['n']}"
        assert row["subset_equal"], f"peel subset mismatch at n={row['n']}"
        assert row["rep_objective_gap"] < 1e-9
        assert abs(row["ga_py"].objective - row["ga_sp"].objective) <= (
            1e-6 * max(1.0, abs(row["ga_py"].objective))
        )
