"""Tables X & XI — consistent and conflicting Wikipedia editor groups.

Table X: DCSAD on the Wiki difference graphs — DCSGreedy vs the
single-graph baselines (Greedy on GD only, Greedy on GD+ only).  The
paper's shape: all answers are *large* and none is a positive clique.

Table XI: DCSGA (NewSEA) on the same graphs — tiny positive cliques.
"""

from __future__ import annotations

from benchmarks._harness import emit, wiki_difference_graphs
from repro.analysis.metrics import affinity, edge_density
from repro.analysis.reporting import Table, format_ratio, yes_no
from repro.core.dcsad import (
    dcs_greedy,
    greedy_on_gd_only,
    greedy_on_gd_plus_only,
)
from repro.core.newsea import new_sea
from repro.graph.cliques import is_positive_clique


def _run_all():
    out = {}
    for gd_type, gd in wiki_difference_graphs().items():
        out[gd_type] = {
            "gd": gd,
            "dcs": dcs_greedy(gd),
            "gd_only": greedy_on_gd_only(gd),
            "gd_plus_only": greedy_on_gd_plus_only(gd),
            "ga": new_sea(gd.positive_part()),
        }
    return out


def test_table10_11_wiki(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table10 = Table(
        title="Table X layout: DCSAD on Wiki data",
        columns=[
            "GD Type",
            "Algorithm",
            "#Users",
            "Ave. Degree Diff",
            "Approx. Ratio",
            "Positive Clique?",
        ],
    )
    table11 = Table(
        title="Table XI layout: DCSGA (NewSEA) on Wiki data",
        columns=[
            "GD Type",
            "#Users",
            "Graph Affinity Diff",
            "Edge Density Diff",
        ],
    )
    for gd_type, result in results.items():
        gd = result["gd"]
        for name, res in (
            ("DCSGreedy", result["dcs"]),
            ("GD only", result["gd_only"]),
            ("GD+ only", result["gd_plus_only"]),
        ):
            table10.add_row(
                [
                    gd_type,
                    name,
                    len(res.subset),
                    f"{res.density:.2f}",
                    format_ratio(res.ratio_bound),
                    yes_no(is_positive_clique(gd, res.subset)),
                ]
            )
        ga = result["ga"]
        table11.add_row(
            [
                gd_type,
                len(ga.support),
                f"{affinity(gd, ga.x):.3f}",
                f"{edge_density(gd, ga.support):.3f}",
            ]
        )

    emit("table10_11_wiki", table10.render() + "\n\n" + table11.render())

    # Shape assertions (paper appendix B.1):
    for gd_type, result in results.items():
        gd = result["gd"]
        # DCSAD answers are large, DCSGA answers tiny.
        assert len(result["dcs"].subset) > 3 * len(result["ga"].support)
        # None of the DCSAD answers is a positive clique on Wiki.
        assert not is_positive_clique(gd, result["dcs"].subset)
        # DCSGreedy dominates both single-graph baselines.
        assert result["dcs"].density >= result["gd_only"].density - 1e-9
        assert result["dcs"].density >= result["gd_plus_only"].density - 1e-9
        # NewSEA still returns a positive clique.
        assert result["ga"].is_positive_clique
