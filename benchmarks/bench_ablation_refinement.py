"""Ablation — the Refinement step (Algorithm 4) on vs off.

SEACD alone converges to KKT points whose supports need not be positive
cliques; the paper's Theorem 5 refinement drives them onto positive
cliques without losing objective.  This bench measures, over all-vertex
initialisations on the DBLP Weighted/Emerging difference graph (whose
star-like positive structures make raw SEACD stop on non-clique KKT
points regularly):

* how many raw SEACD solutions are *not* positive cliques (the work the
  refinement actually does);
* that refinement never decreases the objective;
* its time cost relative to the SEACD run itself.
"""

from __future__ import annotations

from benchmarks._harness import dblp_difference_graphs, emit, timed
from repro.analysis.reporting import Table
from repro.core.refinement import refine
from repro.core.seacd import seacd_from_vertex
from repro.graph.cliques import is_clique


def _run():
    gd_plus = dblp_difference_graphs()[("Weighted", "Emerging")].positive_part()
    vertices = sorted(gd_plus.vertices(), key=repr)

    raw = {}
    _, t_seacd = timed(
        lambda: raw.update(
            {v: seacd_from_vertex(gd_plus, v) for v in vertices}
        )
    )
    refined = {}
    _, t_refine = timed(
        lambda: refined.update(
            {v: refine(gd_plus, raw[v].x) for v in vertices}
        )
    )

    non_clique_before = sum(
        1 for v in vertices if not is_clique(gd_plus, raw[v].x)
    )
    non_clique_after = sum(
        1 for v in vertices if not is_clique(gd_plus, refined[v].x)
    )
    regressions = sum(
        1
        for v in vertices
        if refined[v].objective < raw[v].objective - 1e-6
    )
    best_before = max(result.objective for result in raw.values())
    best_after = max(result.objective for result in refined.values())
    return {
        "n": len(vertices),
        "t_seacd": t_seacd,
        "t_refine": t_refine,
        "non_clique_before": non_clique_before,
        "non_clique_after": non_clique_after,
        "regressions": regressions,
        "best_before": best_before,
        "best_after": best_after,
    }


def test_ablation_refinement(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Refinement ablation (DBLP Weighted/Emerging, all-vertex inits)",
        columns=["Quantity", "Value"],
    )
    table.add_row(["initialisations", stats["n"]])
    table.add_row(["SEACD time (s)", f"{stats['t_seacd']:.3f}"])
    table.add_row(["Refinement time (s)", f"{stats['t_refine']:.3f}"])
    table.add_row(
        ["non-clique KKT points before", stats["non_clique_before"]]
    )
    table.add_row(["non-clique solutions after", stats["non_clique_after"]])
    table.add_row(["objective regressions", stats["regressions"]])
    table.add_row(["best objective before", f"{stats['best_before']:.4f}"])
    table.add_row(["best objective after", f"{stats['best_after']:.4f}"])
    emit("ablation_refinement", table.render())

    # Refinement fixes every non-clique and never regresses.
    assert stats["non_clique_after"] == 0
    assert stats["regressions"] == 0
    assert stats["best_after"] >= stats["best_before"] - 1e-9
    # On this signed graph SEACD alone does stop on non-cliques, so the
    # step is not vacuous.
    assert stats["non_clique_before"] > 0
