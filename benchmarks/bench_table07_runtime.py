"""Table VII — running time of the DCSGA algorithms + SEA expansion errors.

For every dataset, time three configurations on ``GD+``:

* **NewSEA** — smart initialisation + SEACD + Refinement (Algorithm 5);
* **SEACD+Refine** — the same solver initialised from *every* vertex
  (the smart-init ablation);
* **SEA+Refine** — the original SEA (replicator shrink with the loose
  ``Delta f <= 1e-6`` condition) from every vertex, counting its
  expansion errors.

The NewSEA sweep is issued through the batch service layer
(:class:`repro.batch.BatchExecutor`) — Table VII *is* a batch of
``dcsga`` queries, one per dataset, and running it through the executor
exercises the service path on the paper's own multi-dataset workload
(per-query solve seconds come from the worker records; they include
the service's per-graph ``GD+`` build, a small O(m) constant against
the solve times compared below).  The two ablation configurations use
custom per-vertex solvers, which stay on the direct API.

The paper's headline shapes asserted here: NewSEA is the fastest (often
by orders of magnitude), SEACD+Refine never loses to SEA+Refine, NewSEA
and SEACD+Refine make zero expansion errors while SEA+Refine errs on
several datasets, and smart initialisation never hurts the objective.
"""

from __future__ import annotations

from benchmarks._harness import all_named_difference_graphs, emit, timed
from repro.affinity.sea import sea_refine_solver
from repro.analysis.reporting import Table
from repro.batch import BatchExecutor, BatchQuery, GraphSource
from repro.core.newsea import solve_all_initializations


def _run_all():
    named = all_named_difference_graphs()
    keys = list(named)

    # The NewSEA configuration as one batched submission.  Serial mode
    # keeps the per-query seconds comparable with the ablation timings
    # below (no worker contention skewing the Table VII columns).
    queries = [
        BatchQuery(
            kind="dcsga",
            source=GraphSource.from_graph(named[key]),
            qid="/".join(key),
        )
        for key in keys
    ]
    newsea_results = BatchExecutor(mode="serial").run(queries)

    rows = []
    for key, result in zip(keys, newsea_results):
        assert result.status == "ok" and not result.cached, result.qid
        gd_plus = named[key].positive_part()
        all_cd, t_cd = timed(solve_all_initializations, gd_plus)
        all_sea, t_sea = timed(
            solve_all_initializations,
            gd_plus,
            solver=sea_refine_solver(shrink_tol=1e-6),
        )
        rows.append(
            {
                "key": key,
                "n": gd_plus.num_vertices,
                "m_plus": gd_plus.num_edges,
                "t_newsea": result.seconds,
                "t_seacd": t_cd,
                "t_sea": t_sea,
                "errors_sea": all_sea.expansion_errors,
                "errors_seacd": all_cd.expansion_errors,
                "f_newsea": result.payload["density"],
                "f_seacd": all_cd.best.objective,
                "f_sea": all_sea.best.objective,
                "inits_newsea": result.payload["detail"]["initializations"],
            }
        )
    return rows


def test_table07_runtime(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = Table(
        title=(
            "Table VII layout: DCSGA running time in seconds "
            "(+ #errors in SEA expansions)"
        ),
        columns=[
            "Data",
            "Setting",
            "GD Type",
            "NewSEA",
            "SEACD+Refine",
            "SEA+Refine",
            "#Errors in SEA",
            "NewSEA inits / n",
        ],
    )
    for row in rows:
        data, setting, gd_type = row["key"]
        table.add_row(
            [
                data,
                setting,
                gd_type,
                f"{row['t_newsea']:.3f}",
                f"{row['t_seacd']:.3f}",
                f"{row['t_sea']:.3f}",
                row["errors_sea"],
                f"{row['inits_newsea']}/{row['n']}",
            ]
        )
    emit("table07_runtime", table.render())

    # Shape assertions (paper Section VI-D):
    total_sea_errors = sum(row["errors_sea"] for row in rows)
    assert total_sea_errors > 0, "SEA+Refine must err somewhere"
    assert all(row["errors_seacd"] == 0 for row in rows), (
        "the coordinate-descent shrink stage never errs"
    )
    # NewSEA at least matches SEACD+Refine's objective (the heuristic
    # "never impairs quality") up to numeric slack.
    for row in rows:
        assert row["f_newsea"] >= row["f_seacd"] - 1e-6
    # NewSEA beats SEACD+Refine on time on a clear majority of datasets,
    # and SEACD+Refine beats SEA+Refine in aggregate.
    newsea_wins = sum(1 for r in rows if r["t_newsea"] < r["t_seacd"])
    assert newsea_wins >= len(rows) * 2 // 3
    assert sum(r["t_seacd"] for r in rows) < sum(r["t_sea"] for r in rows)
