"""Ablation — shrink-stage convergence condition (Section V-C).

Four configurations of the shrink stage, run from every vertex of the
DBLP Weighted/Emerging difference graph:

* coordinate descent with the correct gradient-gap condition (SEACD);
* replicator dynamics with the correct gradient-gap condition
  (slow — the reason the paper criticises plain SEA);
* replicator dynamics with the loose objective-improvement condition
  (the original SEA; fast but produces expansion errors);
* coordinate descent with a *very tight* gradient tolerance (quality
  insurance check).

Asserted shape: the strict replicator is the slowest; the loose
replicator is the only configuration with expansion errors; objectives
agree across configurations after refinement.
"""

from __future__ import annotations

from benchmarks._harness import dblp_difference_graphs, emit, timed
from repro.affinity.sea import sea_refine_solver
from repro.analysis.reporting import Table
from repro.core.newsea import solve_all_initializations


def _configurations():
    return {
        "CD / gradient-gap (SEACD)": dict(solver=None),
        "CD / tight gradient-gap": dict(tol_scale=1e-6),
        "Replicator / loose delta-f (SEA)": dict(
            solver=sea_refine_solver(shrink_rule="objective", shrink_tol=1e-6)
        ),
        "Replicator / gradient-gap": dict(
            solver=sea_refine_solver(shrink_rule="gradient", shrink_tol=1e-4)
        ),
    }


def _run_all():
    gd_plus = dblp_difference_graphs()[("Weighted", "Emerging")].positive_part()
    rows = {}
    for name, kwargs in _configurations().items():
        result, seconds = timed(
            solve_all_initializations, gd_plus, **kwargs
        )
        rows[name] = {
            "seconds": seconds,
            "objective": result.best.objective,
            "errors": result.expansion_errors,
        }
    return rows


def test_ablation_convergence_condition(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = Table(
        title=(
            "Shrink-stage convergence ablation "
            "(all-vertex inits, DBLP Weighted/Emerging)"
        ),
        columns=["Configuration", "Seconds", "Best objective", "#Expansion errors"],
    )
    for name, row in rows.items():
        table.add_row(
            [name, f"{row['seconds']:.3f}", f"{row['objective']:.4f}", row["errors"]]
        )
    emit("ablation_convergence", table.render())

    loose = rows["Replicator / loose delta-f (SEA)"]
    strict_rep = rows["Replicator / gradient-gap"]
    cd = rows["CD / gradient-gap (SEACD)"]
    tight = rows["CD / tight gradient-gap"]
    # Coordinate descent never errs; replicator configurations may (the
    # strict rule reduces but cannot always eliminate errors because very
    # slow dynamics can exhaust the iteration budget short of a KKT
    # point — exactly the pathology Section V-C describes).
    assert cd["errors"] == 0
    assert tight["errors"] == 0
    assert strict_rep["errors"] <= loose["errors"]
    # The strict replicator pays heavily in time versus CD (the paper's
    # argument for coordinate descent).
    assert strict_rep["seconds"] > cd["seconds"]
    # All configurations land on essentially the same best objective.
    objectives = [row["objective"] for row in rows.values()]
    assert max(objectives) - min(objectives) <= 0.05 * max(objectives)
