"""Table II — statistics of the difference graphs of every dataset.

Regenerates the full 16-row table (n, m+, m-, max/min/average weight)
from the synthetic substitutes and benchmarks the statistics pass.
"""

from __future__ import annotations

from benchmarks._harness import all_named_difference_graphs, emit
from repro.analysis.stats import NamedDifferenceGraph, dataset_stats_table
from repro.core.difference import difference_stats


def test_table02_dataset_statistics(benchmark):
    rows = all_named_difference_graphs()
    entries = [
        NamedDifferenceGraph(data, setting, gd_type, gd)
        for (data, setting, gd_type), gd in rows.items()
    ]

    def compute():
        return [entry.stats() for entry in entries]

    stats = benchmark(compute)
    table = dataset_stats_table(entries)
    emit("table02_dataset_stats", table.render())

    assert len(stats) == 16
    # Shape checks mirroring the paper's Table II:
    by_key = {
        (e.data, e.setting, e.gd_type): s for e, s in zip(entries, stats)
    }
    # Emerging/Disappearing pairs swap m+ and m-.
    emerging = by_key[("DBLP", "Weighted", "Emerging")]
    disappearing = by_key[("DBLP", "Weighted", "Disappearing")]
    assert emerging.num_positive_edges == disappearing.num_negative_edges
    # Actor graphs are positive-only.
    assert by_key[("Actor", "Weighted", "-")].num_negative_edges == 0
    # Discrete settings have small integer weight ranges.
    assert by_key[("DBLP", "Discrete", "Emerging")].max_weight <= 2
    # Interest graphs are sparser than the social graph.
    movie = by_key[("Movie", "-", "Interest-Social")]
    assert movie.num_positive_edges < movie.num_negative_edges
