"""Streaming — incremental engine vs per-event snapshot recompute.

The serving claim of `repro/stream/`: on an event workload where most
of the network is quiet most of the time, maintaining the window sums,
the difference graph, and the DCS answer *by deltas* beats rebuilding
them from scratch every step — **without changing a single alert**.

Three measurements on a planted-burst event workload sweep:

1. **Exact-policy speedup**: the incremental engine (``policy="exact"``,
   answer-faithful solve scheduling) against :func:`snapshot_recompute`
   (the ContrastMonitor loop: materialise the snapshot, rebuild the
   window mean, rebuild the difference graph, full solve — every step).
   Gated at >= 3x at the largest event count, with identical alert sets
   and per-step scores.
2. **Gated-policy behaviour**: the incumbent-holding driver must issue
   strictly fewer full solves while agreeing on every fired
   (above-threshold) alert.
3. **Backend parity**: the sparse engine agrees with the python engine.
"""

from __future__ import annotations

from benchmarks._harness import emit, timed
from repro.analysis.reporting import Table
from repro.datasets.streaming import burst_event_stream
from repro.graph.sparse import scipy_available
from repro.stream import (
    StreamingDCSEngine,
    alert_keys,
    snapshot_recompute,
)

#: (n_vertices, n_steps) of the sweep; the largest is the gate point.
SIZES = ((300, 30), (700, 40), (1200, 50))
SPEEDUP_FLOOR = 3.0
WINDOW = 5
MIN_SCORE = 1e-6
#: Fired-alert threshold for the gated-policy comparison: well above
#: background noise, well below the planted burst.
FIRE_THRESHOLD = 2.0


def _workload(n: int, steps: int):
    return burst_event_stream(
        n_vertices=n,
        n_steps=steps,
        base_p=0.05,
        # Sparse background churn: most of the network is quiet at any
        # step, which is both the realistic regime and the one where
        # incumbent gating has locality to exploit.
        reobserve_p=0.003,
        anomaly_size=8,
        anomaly_start=steps // 2,
        anomaly_duration=3,
        seed=11,
    )


def _run_engine(stream, policy: str, backend: str = "python"):
    engine = StreamingDCSEngine(
        stream.universe,
        window=WINDOW,
        min_score=MIN_SCORE,
        policy=policy,
        backend=backend,
    )
    alerts = engine.run(stream.log.events, n_steps=stream.n_steps)
    return engine, alerts


def _sweep():
    rows = []
    for n, steps in SIZES:
        stream = _workload(n, steps)
        (engine, mine), t_engine = timed(_run_engine, stream, "exact")
        naive, t_naive = timed(
            snapshot_recompute,
            stream.log.events,
            stream.universe,
            n_steps=stream.n_steps,
            window=WINDOW,
            min_score=MIN_SCORE,
        )
        (gated_engine, gated), t_gated = timed(_run_engine, stream, "gated")
        row = {
            "n": n,
            "steps": steps,
            "events": stream.n_events,
            "t_engine": t_engine,
            "t_naive": t_naive,
            "t_gated": t_gated,
            "speedup": t_naive / t_engine,
            "speedup_gated": t_naive / t_gated,
            "stats": engine.stats,
            "gated_stats": gated_engine.stats,
            "alerts": mine,
            "gated_alerts": gated,
            "naive_alerts": naive,
            "stream": stream,
        }
        if scipy_available():
            (sp_engine, sp_alerts), t_sparse = timed(
                _run_engine, stream, "exact", "sparse"
            )
            row["sparse_alerts"] = sp_alerts
            row["t_sparse"] = t_sparse
            row["sparse_stats"] = sp_engine.stats
            # Gated sparse engine: the run that exercises the CSR
            # patch-and-rebuild mirror (incumbent re-scoring).
            (sp_gated, sp_gated_alerts), _ = timed(
                _run_engine, stream, "gated", "sparse"
            )
            row["sparse_gated_stats"] = sp_gated.stats
            row["sparse_gated_alerts"] = sp_gated_alerts
        rows.append(row)
    return rows


def test_streaming(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = Table(
        title="Incremental streaming engine vs snapshot recompute",
        columns=[
            "n",
            "steps",
            "events",
            "naive (s)",
            "engine (s)",
            "speedup",
            "gated (s)",
            "full solves (naive/exact/gated)",
        ],
    )
    for row in rows:
        naive_solves = row["steps"] - WINDOW  # one per warmed step
        table.add_row(
            [
                row["n"],
                row["steps"],
                row["events"],
                f"{row['t_naive']:.3f}",
                f"{row['t_engine']:.3f}",
                f"{row['speedup']:.1f}x",
                f"{row['t_gated']:.3f}",
                f"{naive_solves}/{row['stats'].full_solves}"
                f"/{row['gated_stats'].full_solves}",
            ]
        )
    emit(
        "streaming",
        table.render(),
        data={
            "rows": [
                {
                    "n": row["n"],
                    "steps": row["steps"],
                    "events": row["events"],
                    "naive_seconds": row["t_naive"],
                    "engine_seconds": row["t_engine"],
                    "gated_seconds": row["t_gated"],
                    "speedup": row["speedup"],
                }
                for row in rows
            ],
            "gates": {
                "gated_fewer_solves": all(
                    row["gated_stats"].full_solves
                    < row["stats"].full_solves
                    for row in rows
                ),
            },
        },
    )

    for row in rows:
        mine, naive, gated = row["alerts"], row["naive_alerts"], row["gated_alerts"]
        # 1. Alert parity: the exact engine and the naive recompute flag
        #    the same (step, subset) pairs with the same scores.
        assert alert_keys(mine) == alert_keys(naive), f"n={row['n']}"
        naive_by_step = {a.step: a for a in naive}
        for alert in mine:
            reference = naive_by_step[alert.step]
            assert abs(alert.score - reference.score) <= 1e-6 * max(
                1.0, abs(reference.score)
            )
        # 2. The planted burst is flagged, exactly.
        stream = row["stream"]
        hot = [a for a in mine if a.score > FIRE_THRESHOLD]
        assert {a.step for a in hot} == set(
            range(stream.anomaly_start, stream.anomaly_end)
        )
        for alert in hot:
            assert alert.subset >= stream.anomaly_members
        # 3. Gated policy: same fired alerts, strictly fewer full solves.
        assert alert_keys(
            gated.fired(FIRE_THRESHOLD)
        ) == alert_keys(naive.fired(FIRE_THRESHOLD))
        assert row["gated_stats"].full_solves < row["stats"].full_solves
        assert row["gated_stats"].incumbent_holds > 0
        # 4. Backend parity, and the CSR mirror actually patching in
        #    place under the gated policy's re-scoring.
        if "sparse_alerts" in row:
            assert alert_keys(row["sparse_alerts"]) == alert_keys(mine)
            assert alert_keys(
                row["sparse_gated_alerts"].fired(FIRE_THRESHOLD)
            ) == alert_keys(naive.fired(FIRE_THRESHOLD))
            assert row["sparse_gated_stats"].csr_patches > 0

    # 5. The speedup gate, at the largest event count.
    largest = rows[-1]
    assert largest["speedup"] >= SPEEDUP_FLOOR, (
        f"incremental speedup {largest['speedup']:.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor ({largest['events']} events)"
    )
